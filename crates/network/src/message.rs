//! Inter-container messages and their wire encoding.
//!
//! GSN nodes "communicate among each other in a peer-to-peer fashion" (paper, Section 4):
//! they publish virtual sensors to a directory, subscribe to remote virtual sensors
//! (logical addressing through `wrapper="remote"`), and deliver stream elements to remote
//! subscribers.  The message set below covers that protocol.  Although the reproduction's
//! network is simulated in-process, messages are genuinely serialised to bytes and parsed
//! back so that the per-element cost of remote delivery (encoding + copying + decoding) is
//! exercised, as it would be over TCP.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gsn_telemetry::{
    HealthState, HealthSummary, HistogramSummary, MetricSample, MetricsSnapshot, RemoteSpan,
    SampleValue, SpanId, SubsystemHealth, TraceContext,
};
use gsn_types::{GsnError, GsnResult, NodeId, StreamElement, StreamSchema, Timestamp, Value};
use std::sync::Arc;

/// A monotonically increasing identifier for request/response correlation.
pub type RequestId = u64;

/// One message exchanged between GSN containers.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Register a virtual sensor with the directory.
    DirectoryRegister {
        /// The publishing node.
        node: NodeId,
        /// The virtual sensor name.
        sensor: String,
        /// Discovery metadata (key–value predicates).
        metadata: Vec<(String, String)>,
    },
    /// Remove a virtual sensor from the directory.
    DirectoryDeregister {
        /// The publishing node.
        node: NodeId,
        /// The virtual sensor name.
        sensor: String,
    },
    /// Look up virtual sensors matching all the given predicates.
    DirectoryLookup {
        /// Correlation id.
        request: RequestId,
        /// The predicates that must all match.
        predicates: Vec<(String, String)>,
    },
    /// The response to a lookup: matching (node, sensor) pairs.
    DirectoryResult {
        /// Correlation id of the lookup.
        request: RequestId,
        /// The matches.
        matches: Vec<(NodeId, String)>,
    },
    /// Subscribe to a remote virtual sensor's output stream.
    Subscribe {
        /// Correlation id.
        request: RequestId,
        /// The subscribing node.
        subscriber: NodeId,
        /// The remote virtual sensor name.
        sensor: String,
    },
    /// Acknowledge (or refuse) a subscription.
    SubscribeAck {
        /// Correlation id of the subscription.
        request: RequestId,
        /// Whether the subscription was accepted.
        accepted: bool,
        /// Reason when refused.
        reason: String,
    },
    /// Cancel a subscription.
    Unsubscribe {
        /// The subscribing node.
        subscriber: NodeId,
        /// The remote virtual sensor name.
        sensor: String,
    },
    /// Deliver one output stream element of a virtual sensor to a subscriber.
    StreamDelivery {
        /// The producing virtual sensor.
        sensor: String,
        /// The element payload.
        element: WireElement,
    },
    /// Liveness probe.
    Ping {
        /// Correlation id.
        request: RequestId,
    },
    /// Liveness answer.
    Pong {
        /// Correlation id of the ping.
        request: RequestId,
    },
    /// Open a streaming query on a remote container.  The server opens a pull-based
    /// cursor over its live storage and answers with [`Message::QueryBatch`] messages —
    /// result rows ship incrementally instead of as one monolithic relation, so
    /// constrained links (the mobile-gateway deployments of the GSN follow-up work)
    /// consume arbitrarily large results in bounded memory.
    QueryRequest {
        /// Correlation id.
        request: RequestId,
        /// The SQL text to execute against the remote container's tables.
        sql: String,
        /// How many rows the server should ship per batch.
        batch_rows: u32,
        /// When true the server pipelines: it speculatively pushes a window of batches
        /// ahead of the client's acknowledgements ([`Message::QueryNext`] becomes a
        /// cumulative ack), hiding one link RTT per batch.  When false the wire stays
        /// strictly pull-based (one batch per `QueryNext`).
        prefetch: bool,
        /// The distributed trace this query belongs to, if any.  Encoded as a
        /// trailing extension: old peers simply omit it (decodes as `None`),
        /// and untraced frames are byte-identical to the pre-tracing format.
        trace: Option<TraceContext>,
    },
    /// Pull the next batch of an open remote cursor (the wire stays pull-based: the
    /// server only reads further storage pages when the client asks).
    QueryNext {
        /// Correlation id of the originating request.
        request: RequestId,
        /// The server-side cursor id from the previous [`Message::QueryBatch`].
        cursor: u64,
        /// How many rows to ship in the next batch.
        batch_rows: u32,
        /// The batch sequence number the client expects next.  Lossy-link recovery:
        /// asking again for the *previous* batch (`server next - 1`) makes the server
        /// retransmit its cached copy instead of advancing the cursor, so a dropped
        /// `QueryBatch` is re-requested rather than stalling the query.
        expect_seq: u64,
        /// The distributed trace this pull belongs to, if any (trailing
        /// extension; `None` is byte-identical to the pre-tracing format).
        trace: Option<TraceContext>,
    },
    /// One incremental batch of a remote query result.
    QueryBatch {
        /// Correlation id of the originating request.
        request: RequestId,
        /// Server-side cursor id; quote it in [`Message::QueryNext`] to pull more.
        cursor: u64,
        /// Result column names, in order (sent with every batch — self-describing).
        columns: Vec<String>,
        /// The rows of this batch.
        rows: Vec<Vec<Value>>,
        /// Batch sequence number within this request, starting at 0.  The client
        /// consumes batches in order, ignores duplicates (retransmissions) and
        /// re-requests the expected batch when a number is skipped.
        seq: u64,
        /// True when the cursor is exhausted and closed on the server.
        done: bool,
        /// Non-empty when the query failed (rows are empty and `done` is true).
        error: String,
        /// Microseconds the server spent opening/executing for this batch
        /// (trailing extension; 0 is byte-identical to the old format).
        server_micros: u64,
    },
    /// Ask a peer for its current metrics snapshot (the federation scrape:
    /// EMMA-style cooperating nodes report health to each other).
    MetricsRequest {
        /// Correlation id.
        request: RequestId,
        /// The scraping node (where the snapshot should be sent back).
        from: NodeId,
    },
    /// A peer's typed metrics snapshot, answering [`Message::MetricsRequest`].
    MetricsSnapshot {
        /// Correlation id of the request.
        request: RequestId,
        /// The scraped node.
        node: NodeId,
        /// The full registry snapshot at scrape time.
        snapshot: MetricsSnapshot,
    },
    /// Anti-entropy round opener: a compact summary of the sender's directory replica
    /// (per-origin max version).  The receiver answers with a [`Message::GossipDelta`]
    /// carrying every record the digest proves the sender has not seen.
    GossipDigest {
        /// The gossiping node (replies go here).
        from: NodeId,
        /// `(origin, max version)` pairs — one per origin the sender knows about.
        digest: Vec<(NodeId, u64)>,
        /// Per-node health summaries piggybacked on the round (trailing
        /// extension; empty is byte-identical to the pre-health format).
        health: Vec<HealthSummary>,
        /// The distributed trace this round belongs to, if any (trailing
        /// extension, normally `None` — gossip is background traffic).
        trace: Option<TraceContext>,
    },
    /// Anti-entropy payload: directory records newer than the peer's digest.  When
    /// `digest` is non-empty the sender also wants the records *it* is missing (push–pull);
    /// an empty digest terminates the exchange.
    GossipDelta {
        /// The sending node.
        from: NodeId,
        /// Records the receiver has not seen (by the digest it sent).
        records: Vec<ReplicaRecord>,
        /// The sender's own digest when it wants a return delta; empty to end the round.
        digest: Vec<(NodeId, u64)>,
        /// Per-node health summaries piggybacked on the round (trailing
        /// extension; empty is byte-identical to the pre-health format).
        health: Vec<HealthSummary>,
        /// The distributed trace this round belongs to, if any (trailing
        /// extension, normally `None`).
        trace: Option<TraceContext>,
    },
    /// Placement-ring membership broadcast.  Receivers rebuild the ring deterministically
    /// from the member list; a strictly higher epoch replaces the local view.
    RingAnnounce {
        /// The announcing node.
        from: NodeId,
        /// Monotonic membership epoch (bumped by the node initiating a join/leave).
        epoch: u64,
        /// The full member list at this epoch.
        members: Vec<NodeId>,
    },
    /// Scatter-gather fan-out: run a container-local partial-aggregate query and reply
    /// with the partial rows.  The SQL is the coordinator's rewritten partial shape
    /// (AVG split into SUM+COUNT, group keys first), executed against local storage.
    PartialAggregateRequest {
        /// Correlation id.
        request: RequestId,
        /// The partial-aggregate SQL to execute locally.
        sql: String,
        /// The distributed trace this scatter belongs to, if any (trailing
        /// extension; `None` is byte-identical to the pre-tracing format).
        trace: Option<TraceContext>,
    },
    /// The partial rows answering a [`Message::PartialAggregateRequest`].
    PartialAggregateReply {
        /// Correlation id of the request.
        request: RequestId,
        /// Partial result column names.
        columns: Vec<String>,
        /// Partial result rows (group keys first, then accumulator columns).
        rows: Vec<Vec<Value>>,
        /// Non-empty when the partial execution failed (rows are empty).
        error: String,
        /// Microseconds the server spent executing the partial (trailing
        /// extension; 0 is byte-identical to the old format).
        server_micros: u64,
    },
    /// Ask a peer for every retained span of one distributed trace — the
    /// client-side assembly step of cross-container tracing, issued next to
    /// [`Message::MetricsRequest`] once a federated query completes.
    TraceCollectRequest {
        /// Correlation id.
        request: RequestId,
        /// The collecting node (where the spans should be sent back).
        from: NodeId,
        /// The trace whose spans are wanted.
        trace_id: u128,
    },
    /// A peer's retained spans of one trace, answering
    /// [`Message::TraceCollectRequest`].
    TraceCollectReply {
        /// Correlation id of the request.
        request: RequestId,
        /// The answering node.
        node: NodeId,
        /// The trace the spans belong to.
        trace_id: u128,
        /// Every retained span of the trace on the answering node.
        spans: Vec<RemoteSpan>,
    },
}

/// One versioned entry of the gossip-replicated sensor directory.  The `(version,
/// origin)` pair is a Lamport timestamp: higher version wins, ties break on the larger
/// origin id, so every replica resolves concurrent updates identically.  Deletions are
/// tombstones (`deleted = true`) so they propagate like any other update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaRecord {
    /// The container hosting the virtual sensor.
    pub node: NodeId,
    /// The virtual sensor name (stored lowercased).
    pub sensor: String,
    /// Discovery metadata (key–value predicates).
    pub metadata: Vec<(String, String)>,
    /// Lamport version assigned by `origin` when this update was made.
    pub version: u64,
    /// The node that made this update.
    pub origin: NodeId,
    /// True when this record is a deletion tombstone.
    pub deleted: bool,
}

impl Message {
    /// A short tag naming the message type (for logs and statistics).
    pub fn kind(&self) -> &'static str {
        match self {
            Message::DirectoryRegister { .. } => "directory-register",
            Message::DirectoryDeregister { .. } => "directory-deregister",
            Message::DirectoryLookup { .. } => "directory-lookup",
            Message::DirectoryResult { .. } => "directory-result",
            Message::Subscribe { .. } => "subscribe",
            Message::SubscribeAck { .. } => "subscribe-ack",
            Message::Unsubscribe { .. } => "unsubscribe",
            Message::StreamDelivery { .. } => "stream-delivery",
            Message::Ping { .. } => "ping",
            Message::Pong { .. } => "pong",
            Message::QueryRequest { .. } => "query-request",
            Message::QueryNext { .. } => "query-next",
            Message::QueryBatch { .. } => "query-batch",
            Message::MetricsRequest { .. } => "metrics-request",
            Message::MetricsSnapshot { .. } => "metrics-snapshot",
            Message::GossipDigest { .. } => "gossip-digest",
            Message::GossipDelta { .. } => "gossip-delta",
            Message::RingAnnounce { .. } => "ring-announce",
            Message::PartialAggregateRequest { .. } => "partial-aggregate-request",
            Message::PartialAggregateReply { .. } => "partial-aggregate-reply",
            Message::TraceCollectRequest { .. } => "trace-collect-request",
            Message::TraceCollectReply { .. } => "trace-collect-reply",
        }
    }
}

/// A stream element flattened for the wire: field names, types and values travel together
/// so the receiver can reconstruct the schema without an out-of-band exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct WireElement {
    /// Field names in order.
    pub fields: Vec<(String, gsn_types::DataType)>,
    /// Field values in order.
    pub values: Vec<Value>,
    /// The element timestamp.
    pub timestamp: Timestamp,
    /// The producer-side timestamp, if known.
    pub produced_at: Option<Timestamp>,
}

impl WireElement {
    /// Flattens a stream element.
    pub fn from_element(element: &StreamElement) -> WireElement {
        WireElement {
            fields: element
                .schema()
                .fields()
                .map(|f| (f.name.as_str().to_owned(), f.data_type))
                .collect(),
            values: element.values().to_vec(),
            timestamp: element.timestamp(),
            produced_at: element.produced_at(),
        }
    }

    /// Reconstructs a stream element (rebuilding the schema).
    pub fn into_element(self) -> GsnResult<StreamElement> {
        let schema = StreamSchema::from_pairs(
            &self
                .fields
                .iter()
                .map(|(n, t)| (n.as_str(), *t))
                .collect::<Vec<_>>(),
        )?;
        let mut element = StreamElement::new(Arc::new(schema), self.values, self.timestamp)?;
        if let Some(p) = self.produced_at {
            element = element.with_produced_at(p);
        }
        Ok(element)
    }
}

// ---------------------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------------------

const TAG_DIR_REGISTER: u8 = 1;
const TAG_DIR_DEREGISTER: u8 = 2;
const TAG_DIR_LOOKUP: u8 = 3;
const TAG_DIR_RESULT: u8 = 4;
const TAG_SUBSCRIBE: u8 = 5;
const TAG_SUBSCRIBE_ACK: u8 = 6;
const TAG_UNSUBSCRIBE: u8 = 7;
const TAG_STREAM_DELIVERY: u8 = 8;
const TAG_PING: u8 = 9;
const TAG_PONG: u8 = 10;
const TAG_QUERY_REQUEST: u8 = 11;
const TAG_QUERY_NEXT: u8 = 12;
const TAG_QUERY_BATCH: u8 = 13;
const TAG_METRICS_REQUEST: u8 = 14;
const TAG_METRICS_SNAPSHOT: u8 = 15;
const TAG_GOSSIP_DIGEST: u8 = 16;
const TAG_GOSSIP_DELTA: u8 = 17;
const TAG_RING_ANNOUNCE: u8 = 18;
const TAG_PARTIAL_AGG_REQUEST: u8 = 19;
const TAG_PARTIAL_AGG_REPLY: u8 = 20;
const TAG_TRACE_COLLECT_REQUEST: u8 = 21;
const TAG_TRACE_COLLECT_REPLY: u8 = 22;

// Trailing-extension flag bits.  Extended messages append one flags byte plus
// the flagged payloads *after* their legacy fields, and only when at least one
// extension is present — so frames without extensions stay byte-identical to
// the pre-extension format and decode on old peers, while old frames (which
// end exactly where the legacy fields end) decode here with the defaults.
const EXT_TRACE: u8 = 0x01;
const EXT_HEALTH: u8 = 0x02;
const EXT_SERVER_MICROS: u8 = 0x04;

const SAMPLE_COUNTER: u8 = 0;
const SAMPLE_GAUGE: u8 = 1;
const SAMPLE_HISTOGRAM: u8 = 2;

const VAL_NULL: u8 = 0;
const VAL_INTEGER: u8 = 1;
const VAL_DOUBLE: u8 = 2;
const VAL_VARCHAR: u8 = 3;
const VAL_BOOLEAN: u8 = 4;
const VAL_BINARY: u8 = 5;
const VAL_TIMESTAMP: u8 = 6;

/// Encodes a message to bytes.
pub fn encode(message: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match message {
        Message::DirectoryRegister {
            node,
            sensor,
            metadata,
        } => {
            buf.put_u8(TAG_DIR_REGISTER);
            buf.put_u64(node.as_u64());
            put_string(&mut buf, sensor);
            put_pairs(&mut buf, metadata);
        }
        Message::DirectoryDeregister { node, sensor } => {
            buf.put_u8(TAG_DIR_DEREGISTER);
            buf.put_u64(node.as_u64());
            put_string(&mut buf, sensor);
        }
        Message::DirectoryLookup {
            request,
            predicates,
        } => {
            buf.put_u8(TAG_DIR_LOOKUP);
            buf.put_u64(*request);
            put_pairs(&mut buf, predicates);
        }
        Message::DirectoryResult { request, matches } => {
            buf.put_u8(TAG_DIR_RESULT);
            buf.put_u64(*request);
            buf.put_u32(matches.len() as u32);
            for (node, sensor) in matches {
                buf.put_u64(node.as_u64());
                put_string(&mut buf, sensor);
            }
        }
        Message::Subscribe {
            request,
            subscriber,
            sensor,
        } => {
            buf.put_u8(TAG_SUBSCRIBE);
            buf.put_u64(*request);
            buf.put_u64(subscriber.as_u64());
            put_string(&mut buf, sensor);
        }
        Message::SubscribeAck {
            request,
            accepted,
            reason,
        } => {
            buf.put_u8(TAG_SUBSCRIBE_ACK);
            buf.put_u64(*request);
            buf.put_u8(u8::from(*accepted));
            put_string(&mut buf, reason);
        }
        Message::Unsubscribe { subscriber, sensor } => {
            buf.put_u8(TAG_UNSUBSCRIBE);
            buf.put_u64(subscriber.as_u64());
            put_string(&mut buf, sensor);
        }
        Message::StreamDelivery { sensor, element } => {
            buf.put_u8(TAG_STREAM_DELIVERY);
            put_string(&mut buf, sensor);
            put_element(&mut buf, element);
        }
        Message::Ping { request } => {
            buf.put_u8(TAG_PING);
            buf.put_u64(*request);
        }
        Message::Pong { request } => {
            buf.put_u8(TAG_PONG);
            buf.put_u64(*request);
        }
        Message::QueryRequest {
            request,
            sql,
            batch_rows,
            prefetch,
            trace,
        } => {
            buf.put_u8(TAG_QUERY_REQUEST);
            buf.put_u64(*request);
            put_string(&mut buf, sql);
            buf.put_u32(*batch_rows);
            buf.put_u8(u8::from(*prefetch));
            put_extensions(&mut buf, trace, &[], 0);
        }
        Message::QueryNext {
            request,
            cursor,
            batch_rows,
            expect_seq,
            trace,
        } => {
            buf.put_u8(TAG_QUERY_NEXT);
            buf.put_u64(*request);
            buf.put_u64(*cursor);
            buf.put_u32(*batch_rows);
            buf.put_u64(*expect_seq);
            put_extensions(&mut buf, trace, &[], 0);
        }
        Message::QueryBatch {
            request,
            cursor,
            columns,
            rows,
            seq,
            done,
            error,
            server_micros,
        } => {
            buf.put_u8(TAG_QUERY_BATCH);
            buf.put_u64(*request);
            buf.put_u64(*cursor);
            buf.put_u64(*seq);
            buf.put_u32(columns.len() as u32);
            for column in columns {
                put_string(&mut buf, column);
            }
            buf.put_u32(rows.len() as u32);
            for row in rows {
                buf.put_u32(row.len() as u32);
                for value in row {
                    put_value(&mut buf, value);
                }
            }
            buf.put_u8(u8::from(*done));
            put_string(&mut buf, error);
            put_extensions(&mut buf, &None, &[], *server_micros);
        }
        Message::MetricsRequest { request, from } => {
            buf.put_u8(TAG_METRICS_REQUEST);
            buf.put_u64(*request);
            buf.put_u64(from.as_u64());
        }
        Message::MetricsSnapshot {
            request,
            node,
            snapshot,
        } => {
            buf.put_u8(TAG_METRICS_SNAPSHOT);
            buf.put_u64(*request);
            buf.put_u64(node.as_u64());
            buf.put_u32(snapshot.metrics.len() as u32);
            for sample in &snapshot.metrics {
                put_string(&mut buf, &sample.name);
                put_string(&mut buf, &sample.help);
                put_string(&mut buf, &sample.unit);
                put_string(&mut buf, &sample.label_key);
                put_string(&mut buf, &sample.label);
                match &sample.value {
                    SampleValue::Counter(v) => {
                        buf.put_u8(SAMPLE_COUNTER);
                        buf.put_u64(*v);
                    }
                    SampleValue::Gauge(v) => {
                        buf.put_u8(SAMPLE_GAUGE);
                        buf.put_i64(*v);
                    }
                    SampleValue::Histogram(h) => {
                        buf.put_u8(SAMPLE_HISTOGRAM);
                        buf.put_u64(h.count);
                        buf.put_u64(h.sum);
                        buf.put_u64(h.p50);
                        buf.put_u64(h.p90);
                        buf.put_u64(h.p99);
                        buf.put_u64(h.max);
                    }
                }
            }
        }
        Message::GossipDigest {
            from,
            digest,
            health,
            trace,
        } => {
            buf.put_u8(TAG_GOSSIP_DIGEST);
            buf.put_u64(from.as_u64());
            put_digest(&mut buf, digest);
            put_extensions(&mut buf, trace, health, 0);
        }
        Message::GossipDelta {
            from,
            records,
            digest,
            health,
            trace,
        } => {
            buf.put_u8(TAG_GOSSIP_DELTA);
            buf.put_u64(from.as_u64());
            buf.put_u32(records.len() as u32);
            for record in records {
                put_replica_record(&mut buf, record);
            }
            put_digest(&mut buf, digest);
            put_extensions(&mut buf, trace, health, 0);
        }
        Message::RingAnnounce {
            from,
            epoch,
            members,
        } => {
            buf.put_u8(TAG_RING_ANNOUNCE);
            buf.put_u64(from.as_u64());
            buf.put_u64(*epoch);
            buf.put_u32(members.len() as u32);
            for member in members {
                buf.put_u64(member.as_u64());
            }
        }
        Message::PartialAggregateRequest {
            request,
            sql,
            trace,
        } => {
            buf.put_u8(TAG_PARTIAL_AGG_REQUEST);
            buf.put_u64(*request);
            put_string(&mut buf, sql);
            put_extensions(&mut buf, trace, &[], 0);
        }
        Message::PartialAggregateReply {
            request,
            columns,
            rows,
            error,
            server_micros,
        } => {
            buf.put_u8(TAG_PARTIAL_AGG_REPLY);
            buf.put_u64(*request);
            buf.put_u32(columns.len() as u32);
            for column in columns {
                put_string(&mut buf, column);
            }
            buf.put_u32(rows.len() as u32);
            for row in rows {
                buf.put_u32(row.len() as u32);
                for value in row {
                    put_value(&mut buf, value);
                }
            }
            put_string(&mut buf, error);
            put_extensions(&mut buf, &None, &[], *server_micros);
        }
        Message::TraceCollectRequest {
            request,
            from,
            trace_id,
        } => {
            buf.put_u8(TAG_TRACE_COLLECT_REQUEST);
            buf.put_u64(*request);
            buf.put_u64(from.as_u64());
            put_u128(&mut buf, *trace_id);
        }
        Message::TraceCollectReply {
            request,
            node,
            trace_id,
            spans,
        } => {
            buf.put_u8(TAG_TRACE_COLLECT_REPLY);
            buf.put_u64(*request);
            buf.put_u64(node.as_u64());
            put_u128(&mut buf, *trace_id);
            put_remote_spans(&mut buf, spans);
        }
    }
    buf.freeze()
}

/// Decodes a message from bytes.
pub fn decode(mut buf: &[u8]) -> GsnResult<Message> {
    let err = |what: &str| GsnError::internal(format!("malformed message: {what}"));
    if buf.is_empty() {
        return Err(err("empty buffer"));
    }
    let tag = buf.get_u8();
    let message = match tag {
        TAG_DIR_REGISTER => Message::DirectoryRegister {
            node: NodeId::new(get_u64(&mut buf)?),
            sensor: get_string(&mut buf)?,
            metadata: get_pairs(&mut buf)?,
        },
        TAG_DIR_DEREGISTER => Message::DirectoryDeregister {
            node: NodeId::new(get_u64(&mut buf)?),
            sensor: get_string(&mut buf)?,
        },
        TAG_DIR_LOOKUP => Message::DirectoryLookup {
            request: get_u64(&mut buf)?,
            predicates: get_pairs(&mut buf)?,
        },
        TAG_DIR_RESULT => {
            let request = get_u64(&mut buf)?;
            let n = get_u32(&mut buf)? as usize;
            let mut matches = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let node = NodeId::new(get_u64(&mut buf)?);
                let sensor = get_string(&mut buf)?;
                matches.push((node, sensor));
            }
            Message::DirectoryResult { request, matches }
        }
        TAG_SUBSCRIBE => Message::Subscribe {
            request: get_u64(&mut buf)?,
            subscriber: NodeId::new(get_u64(&mut buf)?),
            sensor: get_string(&mut buf)?,
        },
        TAG_SUBSCRIBE_ACK => Message::SubscribeAck {
            request: get_u64(&mut buf)?,
            accepted: get_u8(&mut buf)? != 0,
            reason: get_string(&mut buf)?,
        },
        TAG_UNSUBSCRIBE => Message::Unsubscribe {
            subscriber: NodeId::new(get_u64(&mut buf)?),
            sensor: get_string(&mut buf)?,
        },
        TAG_STREAM_DELIVERY => Message::StreamDelivery {
            sensor: get_string(&mut buf)?,
            element: get_element(&mut buf)?,
        },
        TAG_PING => Message::Ping {
            request: get_u64(&mut buf)?,
        },
        TAG_PONG => Message::Pong {
            request: get_u64(&mut buf)?,
        },
        TAG_QUERY_REQUEST => {
            let request = get_u64(&mut buf)?;
            let sql = get_string(&mut buf)?;
            let batch_rows = get_u32(&mut buf)?;
            let prefetch = get_u8(&mut buf)? != 0;
            let (trace, _, _) = get_extensions(&mut buf)?;
            Message::QueryRequest {
                request,
                sql,
                batch_rows,
                prefetch,
                trace,
            }
        }
        TAG_QUERY_NEXT => {
            let request = get_u64(&mut buf)?;
            let cursor = get_u64(&mut buf)?;
            let batch_rows = get_u32(&mut buf)?;
            let expect_seq = get_u64(&mut buf)?;
            let (trace, _, _) = get_extensions(&mut buf)?;
            Message::QueryNext {
                request,
                cursor,
                batch_rows,
                expect_seq,
                trace,
            }
        }
        TAG_QUERY_BATCH => {
            let request = get_u64(&mut buf)?;
            let cursor = get_u64(&mut buf)?;
            let seq = get_u64(&mut buf)?;
            let n_columns = get_u32(&mut buf)? as usize;
            let mut columns = Vec::with_capacity(n_columns.min(1024));
            for _ in 0..n_columns {
                columns.push(get_string(&mut buf)?);
            }
            let n_rows = get_u32(&mut buf)? as usize;
            let mut rows = Vec::with_capacity(n_rows.min(1024));
            for _ in 0..n_rows {
                let width = get_u32(&mut buf)? as usize;
                let mut row = Vec::with_capacity(width.min(1024));
                for _ in 0..width {
                    row.push(get_value(&mut buf)?);
                }
                rows.push(row);
            }
            let done = get_u8(&mut buf)? != 0;
            let error = get_string(&mut buf)?;
            let (_, _, server_micros) = get_extensions(&mut buf)?;
            Message::QueryBatch {
                request,
                cursor,
                columns,
                rows,
                seq,
                done,
                error,
                server_micros,
            }
        }
        TAG_METRICS_REQUEST => Message::MetricsRequest {
            request: get_u64(&mut buf)?,
            from: NodeId::new(get_u64(&mut buf)?),
        },
        TAG_METRICS_SNAPSHOT => {
            let request = get_u64(&mut buf)?;
            let node = NodeId::new(get_u64(&mut buf)?);
            let n = get_u32(&mut buf)? as usize;
            let mut metrics = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = get_string(&mut buf)?;
                let help = get_string(&mut buf)?;
                let unit = get_string(&mut buf)?;
                let label_key = get_string(&mut buf)?;
                let label = get_string(&mut buf)?;
                let value = match get_u8(&mut buf)? {
                    SAMPLE_COUNTER => SampleValue::Counter(get_u64(&mut buf)?),
                    SAMPLE_GAUGE => SampleValue::Gauge(get_i64(&mut buf)?),
                    SAMPLE_HISTOGRAM => SampleValue::Histogram(HistogramSummary {
                        count: get_u64(&mut buf)?,
                        sum: get_u64(&mut buf)?,
                        p50: get_u64(&mut buf)?,
                        p90: get_u64(&mut buf)?,
                        p99: get_u64(&mut buf)?,
                        max: get_u64(&mut buf)?,
                    }),
                    other => return Err(err(&format!("unknown sample tag {other}"))),
                };
                metrics.push(MetricSample {
                    name,
                    help,
                    unit,
                    label_key,
                    label,
                    value,
                });
            }
            Message::MetricsSnapshot {
                request,
                node,
                snapshot: MetricsSnapshot { metrics },
            }
        }
        TAG_GOSSIP_DIGEST => {
            let from = NodeId::new(get_u64(&mut buf)?);
            let digest = get_digest(&mut buf)?;
            let (trace, health, _) = get_extensions(&mut buf)?;
            Message::GossipDigest {
                from,
                digest,
                health,
                trace,
            }
        }
        TAG_GOSSIP_DELTA => {
            let from = NodeId::new(get_u64(&mut buf)?);
            let n = get_u32(&mut buf)? as usize;
            let mut records = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                records.push(get_replica_record(&mut buf)?);
            }
            let digest = get_digest(&mut buf)?;
            let (trace, health, _) = get_extensions(&mut buf)?;
            Message::GossipDelta {
                from,
                records,
                digest,
                health,
                trace,
            }
        }
        TAG_RING_ANNOUNCE => {
            let from = NodeId::new(get_u64(&mut buf)?);
            let epoch = get_u64(&mut buf)?;
            let n = get_u32(&mut buf)? as usize;
            let mut members = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                members.push(NodeId::new(get_u64(&mut buf)?));
            }
            Message::RingAnnounce {
                from,
                epoch,
                members,
            }
        }
        TAG_PARTIAL_AGG_REQUEST => {
            let request = get_u64(&mut buf)?;
            let sql = get_string(&mut buf)?;
            let (trace, _, _) = get_extensions(&mut buf)?;
            Message::PartialAggregateRequest {
                request,
                sql,
                trace,
            }
        }
        TAG_PARTIAL_AGG_REPLY => {
            let request = get_u64(&mut buf)?;
            let n_columns = get_u32(&mut buf)? as usize;
            let mut columns = Vec::with_capacity(n_columns.min(1024));
            for _ in 0..n_columns {
                columns.push(get_string(&mut buf)?);
            }
            let n_rows = get_u32(&mut buf)? as usize;
            let mut rows = Vec::with_capacity(n_rows.min(1024));
            for _ in 0..n_rows {
                let width = get_u32(&mut buf)? as usize;
                let mut row = Vec::with_capacity(width.min(1024));
                for _ in 0..width {
                    row.push(get_value(&mut buf)?);
                }
                rows.push(row);
            }
            let error = get_string(&mut buf)?;
            let (_, _, server_micros) = get_extensions(&mut buf)?;
            Message::PartialAggregateReply {
                request,
                columns,
                rows,
                error,
                server_micros,
            }
        }
        TAG_TRACE_COLLECT_REQUEST => Message::TraceCollectRequest {
            request: get_u64(&mut buf)?,
            from: NodeId::new(get_u64(&mut buf)?),
            trace_id: get_u128(&mut buf)?,
        },
        TAG_TRACE_COLLECT_REPLY => Message::TraceCollectReply {
            request: get_u64(&mut buf)?,
            node: NodeId::new(get_u64(&mut buf)?),
            trace_id: get_u128(&mut buf)?,
            spans: get_remote_spans(&mut buf)?,
        },
        other => return Err(err(&format!("unknown tag {other}"))),
    };
    if !buf.is_empty() {
        return Err(err("trailing bytes"));
    }
    Ok(message)
}

/// Appends the trailing-extension block: one flags byte plus the flagged
/// payloads, in flag-bit order (trace, health, server micros).  When nothing
/// is flagged, nothing is written — the frame stays byte-identical to the
/// pre-extension format.
fn put_extensions(
    buf: &mut BytesMut,
    trace: &Option<TraceContext>,
    health: &[HealthSummary],
    server_micros: u64,
) {
    let mut flags = 0u8;
    if trace.is_some() {
        flags |= EXT_TRACE;
    }
    if !health.is_empty() {
        flags |= EXT_HEALTH;
    }
    if server_micros != 0 {
        flags |= EXT_SERVER_MICROS;
    }
    if flags == 0 {
        return;
    }
    buf.put_u8(flags);
    if let Some(trace) = trace {
        put_u128(buf, trace.trace_id);
        buf.put_u64(trace.parent_span.0);
    }
    if !health.is_empty() {
        put_health_summaries(buf, health);
    }
    if server_micros != 0 {
        buf.put_u64(server_micros);
    }
}

/// Reads the trailing-extension block if present, returning
/// `(trace, health, server_micros)` with defaults for absent extensions.
/// Old frames end exactly where the legacy fields end, so an empty buffer
/// means "no extensions".
fn get_extensions(buf: &mut &[u8]) -> GsnResult<(Option<TraceContext>, Vec<HealthSummary>, u64)> {
    if buf.is_empty() {
        return Ok((None, Vec::new(), 0));
    }
    let flags = get_u8(buf)?;
    if flags & !(EXT_TRACE | EXT_HEALTH | EXT_SERVER_MICROS) != 0 {
        return Err(GsnError::internal(format!(
            "malformed message: unknown extension flags {flags:#04x}"
        )));
    }
    let trace = if flags & EXT_TRACE != 0 {
        let trace_id = get_u128(buf)?;
        let parent_span = SpanId(get_u64(buf)?);
        Some(TraceContext {
            trace_id,
            parent_span,
        })
    } else {
        None
    };
    let health = if flags & EXT_HEALTH != 0 {
        get_health_summaries(buf)?
    } else {
        Vec::new()
    };
    let server_micros = if flags & EXT_SERVER_MICROS != 0 {
        get_u64(buf)?
    } else {
        0
    };
    Ok((trace, health, server_micros))
}

fn put_u128(buf: &mut BytesMut, v: u128) {
    buf.put_u64((v >> 64) as u64);
    buf.put_u64(v as u64);
}

fn get_u128(buf: &mut &[u8]) -> GsnResult<u128> {
    let hi = get_u64(buf)?;
    let lo = get_u64(buf)?;
    Ok((u128::from(hi) << 64) | u128::from(lo))
}

fn put_health_summaries(buf: &mut BytesMut, summaries: &[HealthSummary]) {
    buf.put_u32(summaries.len() as u32);
    for summary in summaries {
        buf.put_u64(summary.node);
        buf.put_u64(summary.version);
        buf.put_u32(summary.subsystems.len() as u32);
        for sub in &summary.subsystems {
            put_string(buf, &sub.subsystem);
            buf.put_u8(sub.state.as_u8());
            buf.put_u32(sub.reasons.len() as u32);
            for reason in &sub.reasons {
                put_string(buf, reason);
            }
        }
    }
}

fn get_health_summaries(buf: &mut &[u8]) -> GsnResult<Vec<HealthSummary>> {
    let n = get_u32(buf)? as usize;
    let mut summaries = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let node = get_u64(buf)?;
        let version = get_u64(buf)?;
        let n_subs = get_u32(buf)? as usize;
        let mut subsystems = Vec::with_capacity(n_subs.min(1024));
        for _ in 0..n_subs {
            let subsystem = get_string(buf)?;
            let state = HealthState::from_u8(get_u8(buf)?);
            let n_reasons = get_u32(buf)? as usize;
            let mut reasons = Vec::with_capacity(n_reasons.min(1024));
            for _ in 0..n_reasons {
                reasons.push(get_string(buf)?);
            }
            subsystems.push(SubsystemHealth {
                subsystem,
                state,
                reasons,
            });
        }
        summaries.push(HealthSummary {
            node,
            version,
            subsystems,
        });
    }
    Ok(summaries)
}

fn put_remote_spans(buf: &mut BytesMut, spans: &[RemoteSpan]) {
    buf.put_u32(spans.len() as u32);
    for span in spans {
        buf.put_u64(span.node);
        put_u128(buf, span.trace_id);
        buf.put_u64(span.id);
        buf.put_u64(span.parent);
        put_string(buf, &span.name);
        put_string(buf, &span.detail);
        buf.put_u64(span.start_micros);
        buf.put_u64(span.duration_micros);
    }
}

fn get_remote_spans(buf: &mut &[u8]) -> GsnResult<Vec<RemoteSpan>> {
    let n = get_u32(buf)? as usize;
    let mut spans = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        spans.push(RemoteSpan {
            node: get_u64(buf)?,
            trace_id: get_u128(buf)?,
            id: get_u64(buf)?,
            parent: get_u64(buf)?,
            name: get_string(buf)?,
            detail: get_string(buf)?,
            start_micros: get_u64(buf)?,
            duration_micros: get_u64(buf)?,
        });
    }
    Ok(spans)
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_pairs(buf: &mut BytesMut, pairs: &[(String, String)]) {
    buf.put_u32(pairs.len() as u32);
    for (k, v) in pairs {
        put_string(buf, k);
        put_string(buf, v);
    }
}

fn put_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Null => buf.put_u8(VAL_NULL),
        Value::Integer(i) => {
            buf.put_u8(VAL_INTEGER);
            buf.put_i64(*i);
        }
        Value::Double(d) => {
            buf.put_u8(VAL_DOUBLE);
            buf.put_f64(*d);
        }
        Value::Varchar(s) => {
            buf.put_u8(VAL_VARCHAR);
            put_string(buf, s);
        }
        Value::Boolean(b) => {
            buf.put_u8(VAL_BOOLEAN);
            buf.put_u8(u8::from(*b));
        }
        Value::Binary(bytes) => {
            buf.put_u8(VAL_BINARY);
            buf.put_u32(bytes.len() as u32);
            buf.put_slice(bytes);
        }
        Value::Timestamp(t) => {
            buf.put_u8(VAL_TIMESTAMP);
            buf.put_i64(t.as_millis());
        }
    }
}

fn put_element(buf: &mut BytesMut, element: &WireElement) {
    buf.put_u32(element.fields.len() as u32);
    for (name, ty) in &element.fields {
        put_string(buf, name);
        put_string(buf, ty.canonical_name());
    }
    buf.put_u32(element.values.len() as u32);
    for v in &element.values {
        put_value(buf, v);
    }
    buf.put_i64(element.timestamp.as_millis());
    match element.produced_at {
        Some(t) => {
            buf.put_u8(1);
            buf.put_i64(t.as_millis());
        }
        None => buf.put_u8(0),
    }
}

fn put_digest(buf: &mut BytesMut, digest: &[(NodeId, u64)]) {
    buf.put_u32(digest.len() as u32);
    for (origin, version) in digest {
        buf.put_u64(origin.as_u64());
        buf.put_u64(*version);
    }
}

fn put_replica_record(buf: &mut BytesMut, record: &ReplicaRecord) {
    buf.put_u64(record.node.as_u64());
    put_string(buf, &record.sensor);
    put_pairs(buf, &record.metadata);
    buf.put_u64(record.version);
    buf.put_u64(record.origin.as_u64());
    buf.put_u8(u8::from(record.deleted));
}

fn get_digest(buf: &mut &[u8]) -> GsnResult<Vec<(NodeId, u64)>> {
    let n = get_u32(buf)? as usize;
    let mut digest = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let origin = NodeId::new(get_u64(buf)?);
        let version = get_u64(buf)?;
        digest.push((origin, version));
    }
    Ok(digest)
}

fn get_replica_record(buf: &mut &[u8]) -> GsnResult<ReplicaRecord> {
    Ok(ReplicaRecord {
        node: NodeId::new(get_u64(buf)?),
        sensor: get_string(buf)?,
        metadata: get_pairs(buf)?,
        version: get_u64(buf)?,
        origin: NodeId::new(get_u64(buf)?),
        deleted: get_u8(buf)? != 0,
    })
}

fn get_u8(buf: &mut &[u8]) -> GsnResult<u8> {
    if buf.remaining() < 1 {
        return Err(GsnError::internal("malformed message: truncated u8"));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut &[u8]) -> GsnResult<u32> {
    if buf.remaining() < 4 {
        return Err(GsnError::internal("malformed message: truncated u32"));
    }
    Ok(buf.get_u32())
}

fn get_u64(buf: &mut &[u8]) -> GsnResult<u64> {
    if buf.remaining() < 8 {
        return Err(GsnError::internal("malformed message: truncated u64"));
    }
    Ok(buf.get_u64())
}

fn get_i64(buf: &mut &[u8]) -> GsnResult<i64> {
    if buf.remaining() < 8 {
        return Err(GsnError::internal("malformed message: truncated i64"));
    }
    Ok(buf.get_i64())
}

fn get_f64(buf: &mut &[u8]) -> GsnResult<f64> {
    if buf.remaining() < 8 {
        return Err(GsnError::internal("malformed message: truncated f64"));
    }
    Ok(buf.get_f64())
}

fn get_string(buf: &mut &[u8]) -> GsnResult<String> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(GsnError::internal("malformed message: truncated string"));
    }
    let bytes = buf[..len].to_vec();
    buf.advance(len);
    String::from_utf8(bytes).map_err(|_| GsnError::internal("malformed message: invalid UTF-8"))
}

fn get_pairs(buf: &mut &[u8]) -> GsnResult<Vec<(String, String)>> {
    let n = get_u32(buf)? as usize;
    let mut pairs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let k = get_string(buf)?;
        let v = get_string(buf)?;
        pairs.push((k, v));
    }
    Ok(pairs)
}

fn get_value(buf: &mut &[u8]) -> GsnResult<Value> {
    let tag = get_u8(buf)?;
    Ok(match tag {
        VAL_NULL => Value::Null,
        VAL_INTEGER => Value::Integer(get_i64(buf)?),
        VAL_DOUBLE => Value::Double(get_f64(buf)?),
        VAL_VARCHAR => Value::Varchar(get_string(buf)?),
        VAL_BOOLEAN => Value::Boolean(get_u8(buf)? != 0),
        VAL_BINARY => {
            let len = get_u32(buf)? as usize;
            if buf.remaining() < len {
                return Err(GsnError::internal("malformed message: truncated binary"));
            }
            let bytes = buf[..len].to_vec();
            buf.advance(len);
            Value::binary(bytes)
        }
        VAL_TIMESTAMP => Value::Timestamp(Timestamp::from_millis(get_i64(buf)?)),
        other => {
            return Err(GsnError::internal(format!(
                "malformed message: unknown value tag {other}"
            )))
        }
    })
}

fn get_element(buf: &mut &[u8]) -> GsnResult<WireElement> {
    let n_fields = get_u32(buf)? as usize;
    let mut fields = Vec::with_capacity(n_fields.min(1024));
    for _ in 0..n_fields {
        let name = get_string(buf)?;
        let ty = gsn_types::DataType::parse(&get_string(buf)?)?;
        fields.push((name, ty));
    }
    let n_values = get_u32(buf)? as usize;
    let mut values = Vec::with_capacity(n_values.min(1024));
    for _ in 0..n_values {
        values.push(get_value(buf)?);
    }
    let timestamp = Timestamp::from_millis(get_i64(buf)?);
    let produced_at = if get_u8(buf)? == 1 {
        Some(Timestamp::from_millis(get_i64(buf)?))
    } else {
        None
    };
    Ok(WireElement {
        fields,
        values,
        timestamp,
        produced_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsn_types::DataType;

    fn sample_element() -> StreamElement {
        let schema = Arc::new(
            StreamSchema::from_pairs(&[
                ("temperature", DataType::Integer),
                ("room", DataType::Varchar),
                ("image", DataType::Binary),
                ("ok", DataType::Boolean),
                ("light", DataType::Double),
                ("seen", DataType::Timestamp),
                ("missing", DataType::Varchar),
            ])
            .unwrap(),
        );
        StreamElement::new(
            schema,
            vec![
                Value::Integer(21),
                Value::varchar("bc143"),
                Value::binary(vec![1, 2, 3, 4]),
                Value::Boolean(true),
                Value::Double(444.5),
                Value::Timestamp(Timestamp(99)),
                Value::Null,
            ],
            Timestamp(1_234),
        )
        .unwrap()
        .with_produced_at(Timestamp(1_200))
    }

    fn roundtrip(message: Message) {
        let bytes = encode(&message);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, message);
    }

    #[test]
    fn all_message_kinds_round_trip() {
        roundtrip(Message::DirectoryRegister {
            node: NodeId::new(3),
            sensor: "room-temp".into(),
            metadata: vec![
                ("type".into(), "temperature".into()),
                ("location".into(), "bc143".into()),
            ],
        });
        roundtrip(Message::DirectoryDeregister {
            node: NodeId::new(3),
            sensor: "room-temp".into(),
        });
        roundtrip(Message::DirectoryLookup {
            request: 77,
            predicates: vec![("type".into(), "temperature".into())],
        });
        roundtrip(Message::DirectoryResult {
            request: 77,
            matches: vec![(NodeId::new(1), "a".into()), (NodeId::new(2), "b".into())],
        });
        roundtrip(Message::Subscribe {
            request: 5,
            subscriber: NodeId::new(9),
            sensor: "cam".into(),
        });
        roundtrip(Message::SubscribeAck {
            request: 5,
            accepted: false,
            reason: "access denied".into(),
        });
        roundtrip(Message::Unsubscribe {
            subscriber: NodeId::new(9),
            sensor: "cam".into(),
        });
        roundtrip(Message::Ping { request: 1 });
        roundtrip(Message::Pong { request: 1 });
        roundtrip(Message::QueryRequest {
            request: 42,
            sql: "select * from motes limit 10".into(),
            batch_rows: 128,
            prefetch: false,
            trace: None,
        });
        roundtrip(Message::QueryRequest {
            request: 44,
            sql: "select * from motes".into(),
            batch_rows: 64,
            prefetch: true,
            trace: Some(TraceContext {
                trace_id: (7u128 << 64) | 44,
                parent_span: SpanId(0x0007_0000_0000_0001),
            }),
        });
        roundtrip(Message::QueryNext {
            request: 42,
            cursor: 7,
            batch_rows: 64,
            expect_seq: 3,
            trace: None,
        });
        roundtrip(Message::QueryNext {
            request: 42,
            cursor: 7,
            batch_rows: 64,
            expect_seq: 4,
            trace: Some(TraceContext {
                trace_id: u128::MAX,
                parent_span: SpanId(u64::MAX),
            }),
        });
        roundtrip(Message::QueryBatch {
            request: 42,
            cursor: 7,
            columns: vec!["PK".into(), "TEMPERATURE".into()],
            rows: vec![
                vec![Value::Integer(1), Value::Double(21.5)],
                vec![Value::Integer(2), Value::Null],
            ],
            seq: 5,
            done: false,
            error: String::new(),
            server_micros: 0,
        });
        roundtrip(Message::QueryBatch {
            request: 43,
            cursor: 0,
            columns: Vec::new(),
            rows: Vec::new(),
            seq: 0,
            done: true,
            error: "unknown table `nosuch`".into(),
            server_micros: 1_375,
        });
        roundtrip(Message::StreamDelivery {
            sensor: "motes".into(),
            element: WireElement::from_element(&sample_element()),
        });
        roundtrip(Message::MetricsRequest {
            request: 9,
            from: NodeId::new(4),
        });
        roundtrip(Message::MetricsSnapshot {
            request: 9,
            node: NodeId::new(2),
            snapshot: MetricsSnapshot {
                metrics: vec![
                    MetricSample {
                        name: "gsn_steps_total".into(),
                        help: "Steps executed".into(),
                        unit: "steps".into(),
                        label_key: String::new(),
                        label: String::new(),
                        value: SampleValue::Counter(17),
                    },
                    MetricSample {
                        name: "gsn_pool_resident_pages".into(),
                        help: "Resident pages".into(),
                        unit: "pages".into(),
                        label_key: String::new(),
                        label: String::new(),
                        value: SampleValue::Gauge(-1),
                    },
                    MetricSample {
                        name: "gsn_step_micros".into(),
                        help: "Step latency".into(),
                        unit: "microseconds".into(),
                        label_key: "phase".into(),
                        label: "pipeline".into(),
                        value: SampleValue::Histogram(HistogramSummary {
                            count: 4,
                            sum: 100,
                            p50: 20,
                            p90: 40,
                            p99: 40,
                            max: 41,
                        }),
                    },
                ],
            },
        });
        roundtrip(Message::MetricsSnapshot {
            request: 10,
            node: NodeId::new(3),
            snapshot: MetricsSnapshot::default(),
        });
        roundtrip(Message::GossipDigest {
            from: NodeId::new(5),
            digest: vec![(NodeId::new(1), 17), (NodeId::new(2), 0)],
            health: Vec::new(),
            trace: None,
        });
        roundtrip(Message::GossipDigest {
            from: NodeId::new(5),
            digest: Vec::new(),
            health: vec![HealthSummary {
                node: 5,
                version: 31,
                subsystems: vec![
                    SubsystemHealth {
                        subsystem: "step".into(),
                        state: HealthState::Healthy,
                        reasons: Vec::new(),
                    },
                    SubsystemHealth {
                        subsystem: "storage".into(),
                        state: HealthState::Degraded,
                        reasons: vec!["wal fsync p99 80000us over budget 50000us".into()],
                    },
                ],
            }],
            trace: None,
        });
        roundtrip(Message::GossipDelta {
            from: NodeId::new(2),
            records: vec![
                ReplicaRecord {
                    node: NodeId::new(2),
                    sensor: "room-temp".into(),
                    metadata: vec![("type".into(), "temperature".into())],
                    version: 9,
                    origin: NodeId::new(2),
                    deleted: false,
                },
                ReplicaRecord {
                    node: NodeId::new(3),
                    sensor: "cam-0".into(),
                    metadata: Vec::new(),
                    version: 12,
                    origin: NodeId::new(1),
                    deleted: true,
                },
            ],
            digest: vec![(NodeId::new(2), 9)],
            health: Vec::new(),
            trace: None,
        });
        roundtrip(Message::GossipDelta {
            from: NodeId::new(2),
            records: Vec::new(),
            digest: Vec::new(),
            health: vec![
                HealthSummary {
                    node: 2,
                    version: 8,
                    subsystems: vec![SubsystemHealth {
                        subsystem: "federation".into(),
                        state: HealthState::Unhealthy,
                        reasons: vec!["retransmit ratio 412 per mille".into()],
                    }],
                },
                HealthSummary::default(),
            ],
            trace: Some(TraceContext {
                trace_id: 1,
                parent_span: SpanId(2),
            }),
        });
        roundtrip(Message::RingAnnounce {
            from: NodeId::new(1),
            epoch: 4,
            members: vec![NodeId::new(1), NodeId::new(2), NodeId::new(7)],
        });
        roundtrip(Message::PartialAggregateRequest {
            request: 81,
            sql: "select count(*) as a0_count, sum(temperature) as a0_sum from motes".into(),
            trace: None,
        });
        roundtrip(Message::PartialAggregateRequest {
            request: 83,
            sql: "select count(*) as a0_count from motes".into(),
            trace: Some(TraceContext {
                trace_id: (3u128 << 64) | 83,
                parent_span: SpanId(0x0003_0000_0000_0009),
            }),
        });
        roundtrip(Message::PartialAggregateReply {
            request: 81,
            columns: vec!["a0_count".into(), "a0_sum".into()],
            rows: vec![vec![Value::Integer(10), Value::Double(215.5)]],
            error: String::new(),
            server_micros: 912,
        });
        roundtrip(Message::PartialAggregateReply {
            request: 82,
            columns: Vec::new(),
            rows: Vec::new(),
            error: "unknown table `nosuch`".into(),
            server_micros: 0,
        });
        roundtrip(Message::TraceCollectRequest {
            request: 90,
            from: NodeId::new(1),
            trace_id: (1u128 << 64) | 42,
        });
        roundtrip(Message::TraceCollectReply {
            request: 90,
            node: NodeId::new(4),
            trace_id: (1u128 << 64) | 42,
            spans: vec![
                RemoteSpan {
                    node: 4,
                    trace_id: (1u128 << 64) | 42,
                    id: 0x0004_0000_0000_0002,
                    parent: 0x0001_0000_0000_0001,
                    name: "federated.serve".into(),
                    detail: "select avg(temperature) from mesh-temp".into(),
                    start_micros: 12_000,
                    duration_micros: 640,
                },
                RemoteSpan {
                    node: 4,
                    trace_id: (1u128 << 64) | 42,
                    id: 0x0004_0000_0000_0003,
                    parent: 0x0004_0000_0000_0002,
                    name: "query.exec".into(),
                    detail: String::new(),
                    start_micros: 12_100,
                    duration_micros: 500,
                },
            ],
        });
        roundtrip(Message::TraceCollectReply {
            request: 91,
            node: NodeId::new(5),
            trace_id: 7,
            spans: Vec::new(),
        });
    }

    #[test]
    fn wire_element_reconstructs_stream_element() {
        let original = sample_element();
        let wire = WireElement::from_element(&original);
        let bytes = encode(&Message::StreamDelivery {
            sensor: "s".into(),
            element: wire,
        });
        let decoded = decode(&bytes).unwrap();
        match decoded {
            Message::StreamDelivery { element, .. } => {
                let rebuilt = element.into_element().unwrap();
                assert_eq!(rebuilt.values(), original.values());
                assert_eq!(rebuilt.timestamp(), original.timestamp());
                assert_eq!(rebuilt.produced_at(), original.produced_at());
                assert_eq!(rebuilt.schema().names(), original.schema().names());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_malformed_input() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[255]).is_err());
        assert!(decode(&[TAG_PING]).is_err()); // truncated request id
                                               // Trailing garbage after a valid message.
        let mut bytes = encode(&Message::Ping { request: 1 }).to_vec();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
        // Corrupted string length.
        let mut bytes = encode(&Message::DirectoryDeregister {
            node: NodeId::new(1),
            sensor: "x".into(),
        })
        .to_vec();
        let len = bytes.len();
        bytes[len - 3] = 0xFF; // inflate the sensor-name length prefix
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn untraced_frames_match_the_pre_extension_format() {
        // An untraced QueryRequest must be byte-identical to the legacy
        // encoding (no flags byte at all), so old peers still decode it.
        let bytes = encode(&Message::QueryRequest {
            request: 42,
            sql: "select 1".into(),
            batch_rows: 8,
            prefetch: true,
            trace: None,
        });
        let mut legacy = BytesMut::new();
        legacy.put_u8(TAG_QUERY_REQUEST);
        legacy.put_u64(42);
        put_string(&mut legacy, "select 1");
        legacy.put_u32(8);
        legacy.put_u8(1);
        assert_eq!(&bytes[..], &legacy[..]);
        // And a legacy frame (ending at the legacy fields) decodes here with
        // the extension defaults.
        match decode(&legacy).unwrap() {
            Message::QueryRequest { trace, .. } => assert_eq!(trace, None),
            other => panic!("unexpected {other:?}"),
        }
        // Same for a health-free gossip digest.
        let bytes = encode(&Message::GossipDigest {
            from: NodeId::new(5),
            digest: vec![(NodeId::new(1), 17)],
            health: Vec::new(),
            trace: None,
        });
        let mut legacy = BytesMut::new();
        legacy.put_u8(TAG_GOSSIP_DIGEST);
        legacy.put_u64(5);
        put_digest(&mut legacy, &[(NodeId::new(1), 17)]);
        assert_eq!(&bytes[..], &legacy[..]);
        // A zero server_micros QueryBatch also omits the extension block.
        let plain = encode(&Message::QueryBatch {
            request: 1,
            cursor: 2,
            columns: Vec::new(),
            rows: Vec::new(),
            seq: 0,
            done: true,
            error: String::new(),
            server_micros: 0,
        });
        let timed = encode(&Message::QueryBatch {
            request: 1,
            cursor: 2,
            columns: Vec::new(),
            rows: Vec::new(),
            seq: 0,
            done: true,
            error: String::new(),
            server_micros: 99,
        });
        assert_eq!(timed.len(), plain.len() + 9); // flags byte + u64
    }

    #[test]
    fn unknown_extension_flags_are_rejected() {
        let mut bytes = encode(&Message::QueryNext {
            request: 1,
            cursor: 2,
            batch_rows: 3,
            expect_seq: 4,
            trace: None,
        })
        .to_vec();
        bytes.push(0x80); // a flags byte with an unassigned bit set
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(Message::Ping { request: 0 }.kind(), "ping");
        assert_eq!(
            Message::StreamDelivery {
                sensor: "s".into(),
                element: WireElement::from_element(&sample_element())
            }
            .kind(),
            "stream-delivery"
        );
    }

    #[test]
    fn encoded_size_scales_with_payload() {
        let small = encode(&Message::StreamDelivery {
            sensor: "s".into(),
            element: WireElement {
                fields: vec![("image".into(), DataType::Binary)],
                values: vec![Value::binary(vec![0; 15])],
                timestamp: Timestamp(0),
                produced_at: None,
            },
        });
        let large = encode(&Message::StreamDelivery {
            sensor: "s".into(),
            element: WireElement {
                fields: vec![("image".into(), DataType::Binary)],
                values: vec![Value::binary(vec![0; 32 * 1024])],
                timestamp: Timestamp(0),
                produced_at: None,
            },
        });
        assert!(large.len() - small.len() >= 32 * 1024 - 15);
    }
}
