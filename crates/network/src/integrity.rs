//! Data integrity: message signing and verification.
//!
//! "the data integrity layer guarantees data integrity and confidentiality through
//! electronic signatures and encryption (this can be defined at different levels, for
//! example, for the whole GSN container or for an individual virtual sensor)"
//! (paper, Section 4).
//!
//! The reproduction implements the integrity half with a keyed hash (HMAC-style
//! construction over a simple FNV/SipHash-like mixer): each container or virtual sensor
//! can own a signing key, sign outgoing payloads and verify incoming ones.  This is not
//! cryptographically strong — the paper's mechanism (and any production deployment) would
//! use a real MAC — but it exercises the identical code path: key management per scope,
//! sign on send, verify on receive, reject on mismatch.

use std::collections::HashMap;

use gsn_types::{GsnError, GsnResult};
use parking_lot::RwLock;

/// A signing key (shared secret) for one scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigningKey(Vec<u8>);

impl SigningKey {
    /// Creates a key from raw bytes.
    pub fn new(bytes: impl Into<Vec<u8>>) -> SigningKey {
        SigningKey(bytes.into())
    }

    /// Derives a key deterministically from a passphrase.
    pub fn from_passphrase(passphrase: &str) -> SigningKey {
        let mut state: u64 = 0xcbf29ce484222325;
        let mut bytes = Vec::with_capacity(32);
        for round in 0u8..4 {
            for b in passphrase.bytes().chain(std::iter::once(round)) {
                state ^= b as u64;
                state = state.wrapping_mul(0x100000001b3);
            }
            bytes.extend_from_slice(&state.to_be_bytes());
        }
        SigningKey(bytes)
    }
}

/// A detached signature over a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature(pub u64);

/// The scope a key applies to: the whole container or one virtual sensor (the paper calls
/// out both granularities).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IntegrityScope {
    /// One key for the whole container.
    Container,
    /// A key specific to one virtual sensor.
    Sensor(String),
}

impl IntegrityScope {
    /// Builds a per-sensor scope.
    pub fn sensor(name: &str) -> IntegrityScope {
        IntegrityScope::Sensor(name.to_ascii_lowercase())
    }
}

/// Signs and verifies payloads for a container.
#[derive(Debug, Default)]
pub struct IntegrityService {
    keys: RwLock<HashMap<IntegrityScope, SigningKey>>,
}

impl IntegrityService {
    /// Creates a service with no keys (signing disabled until a key is installed).
    pub fn new() -> IntegrityService {
        IntegrityService::default()
    }

    /// Installs (or replaces) the key for a scope.
    pub fn install_key(&self, scope: IntegrityScope, key: SigningKey) {
        self.keys.write().insert(scope, key);
    }

    /// Removes the key for a scope.
    pub fn remove_key(&self, scope: &IntegrityScope) {
        self.keys.write().remove(scope);
    }

    /// True when a key is installed for a scope (directly; no fallback).
    pub fn has_key(&self, scope: &IntegrityScope) -> bool {
        self.keys.read().contains_key(scope)
    }

    /// The key used for a sensor: its own key when installed, otherwise the container key.
    fn key_for(&self, scope: &IntegrityScope) -> Option<SigningKey> {
        let keys = self.keys.read();
        if let Some(k) = keys.get(scope) {
            return Some(k.clone());
        }
        if matches!(scope, IntegrityScope::Sensor(_)) {
            return keys.get(&IntegrityScope::Container).cloned();
        }
        None
    }

    /// Signs a payload for a scope.  Returns an error when no applicable key exists.
    pub fn sign(&self, scope: &IntegrityScope, payload: &[u8]) -> GsnResult<Signature> {
        let key = self.key_for(scope).ok_or_else(|| {
            GsnError::integrity(format!("no signing key installed for {scope:?}"))
        })?;
        Ok(Signature(keyed_digest(&key, payload)))
    }

    /// Verifies a payload signature, producing an [`GsnError::IntegrityViolation`] on
    /// mismatch or missing key.
    pub fn verify(
        &self,
        scope: &IntegrityScope,
        payload: &[u8],
        signature: Signature,
    ) -> GsnResult<()> {
        let expected = self.sign(scope, payload)?;
        if expected == signature {
            Ok(())
        } else {
            Err(GsnError::integrity(format!(
                "signature mismatch for {scope:?}"
            )))
        }
    }
}

/// A keyed digest: key-prefixed and key-suffixed FNV-1a folding, mixed with a final
/// avalanche step.  Deterministic and fast; see the module docs for the security caveat.
fn keyed_digest(key: &SigningKey, payload: &[u8]) -> u64 {
    let mut state: u64 = 0xcbf29ce484222325;
    for b in key.0.iter().chain(payload).chain(key.0.iter()) {
        state ^= *b as u64;
        state = state.wrapping_mul(0x100000001b3);
    }
    // Final avalanche (splitmix64 finaliser).
    state ^= state >> 30;
    state = state.wrapping_mul(0xbf58476d1ce4e5b9);
    state ^= state >> 27;
    state = state.wrapping_mul(0x94d049bb133111eb);
    state ^ (state >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_and_verify_round_trip() {
        let service = IntegrityService::new();
        service.install_key(
            IntegrityScope::Container,
            SigningKey::from_passphrase("secret"),
        );
        let payload = b"stream element bytes";
        let sig = service.sign(&IntegrityScope::Container, payload).unwrap();
        service
            .verify(&IntegrityScope::Container, payload, sig)
            .unwrap();
    }

    #[test]
    fn tampered_payloads_are_rejected() {
        let service = IntegrityService::new();
        service.install_key(
            IntegrityScope::Container,
            SigningKey::from_passphrase("secret"),
        );
        let sig = service
            .sign(&IntegrityScope::Container, b"original")
            .unwrap();
        let err = service
            .verify(&IntegrityScope::Container, b"tampered", sig)
            .unwrap_err();
        assert_eq!(err.category(), "integrity");
    }

    #[test]
    fn different_keys_produce_different_signatures() {
        let a = SigningKey::from_passphrase("alpha");
        let b = SigningKey::from_passphrase("beta");
        assert_ne!(a, b);
        assert_ne!(keyed_digest(&a, b"x"), keyed_digest(&b, b"x"));
        assert_eq!(
            SigningKey::from_passphrase("alpha"),
            SigningKey::from_passphrase("alpha")
        );
    }

    #[test]
    fn per_sensor_keys_override_the_container_key() {
        let service = IntegrityService::new();
        service.install_key(
            IntegrityScope::Container,
            SigningKey::from_passphrase("container"),
        );
        service.install_key(
            IntegrityScope::sensor("secure-cam"),
            SigningKey::from_passphrase("camera-key"),
        );
        let payload = b"frame";
        let cam_sig = service
            .sign(&IntegrityScope::sensor("SECURE-CAM"), payload)
            .unwrap();
        let container_sig = service.sign(&IntegrityScope::Container, payload).unwrap();
        assert_ne!(cam_sig, container_sig);
        // Another sensor without its own key falls back to the container key.
        let other_sig = service
            .sign(&IntegrityScope::sensor("motes"), payload)
            .unwrap();
        assert_eq!(other_sig, container_sig);
    }

    #[test]
    fn missing_keys_error() {
        let service = IntegrityService::new();
        assert!(service.sign(&IntegrityScope::Container, b"x").is_err());
        assert!(service
            .verify(&IntegrityScope::sensor("s"), b"x", Signature(0))
            .is_err());
        assert!(!service.has_key(&IntegrityScope::Container));
        service.install_key(IntegrityScope::Container, SigningKey::new(vec![1, 2, 3]));
        assert!(service.has_key(&IntegrityScope::Container));
        service.remove_key(&IntegrityScope::Container);
        assert!(!service.has_key(&IntegrityScope::Container));
    }

    #[test]
    fn digest_differs_for_small_changes() {
        let key = SigningKey::from_passphrase("k");
        let a = keyed_digest(&key, b"measurement 21.5");
        let b = keyed_digest(&key, b"measurement 21.6");
        let c = keyed_digest(&key, b"measurement 21.5 ");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
