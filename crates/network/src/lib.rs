//! # gsn-network
//!
//! The peer-to-peer substrate of GSN-RS: inter-container messages and their wire codec,
//! a simulated network with configurable link quality, the predicate-based virtual sensor
//! directory, access control and the data-integrity service.
//!
//! The paper's GSN nodes communicate over campus TCP/HTTP links and publish sensors to a
//! peer-to-peer directory (Section 4).  The reproduction keeps the protocol and all of its
//! costs (serialisation, latency, loss, disconnections) but runs it in-process and
//! clock-driven so that multi-node experiments are deterministic — see DESIGN.md for the
//! substitution table.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod directory;
pub mod integrity;
pub mod message;
pub mod simnet;

pub use access::{AccessController, DefaultPolicy, Operation, Principal};
pub use directory::{Directory, DirectoryEntry, DirectoryStats};
pub use integrity::{IntegrityScope, IntegrityService, Signature, SigningKey};
pub use message::{decode, encode, Message, ReplicaRecord, RequestId, WireElement};
pub use simnet::{Envelope, LinkSpec, NetworkStats, SimulatedNetwork};
