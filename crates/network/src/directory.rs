//! The peer-to-peer directory of virtual sensors.
//!
//! "Virtual sensor descriptions are identified by user-definable key-value pairs which are
//! published in a peer-to-peer directory so that virtual sensors can be discovered and
//! accessed based on any combination of their properties, for example, geographical
//! location and sensor type" (paper, Section 4).
//!
//! The reproduction implements the directory as a shared service that every simulated node
//! registers with and queries (logically a DHT; physically one in-process index).  Lookup
//! semantics match the paper's descriptor addressing: a remote stream source lists
//! predicates (`type=temperature`, `location=bc143`) and the directory returns every
//! virtual sensor whose metadata satisfies *all* of them.

use std::collections::HashMap;

use gsn_types::{GsnError, GsnResult, NodeId};
use parking_lot::RwLock;

/// One directory entry: a published virtual sensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectoryEntry {
    /// The node hosting the virtual sensor.
    pub node: NodeId,
    /// The virtual sensor name (unique per node).
    pub sensor: String,
    /// Discovery metadata.
    pub metadata: Vec<(String, String)>,
}

impl DirectoryEntry {
    /// True when every predicate matches this entry's metadata (case-insensitive keys and
    /// values).  The reserved keys `name` and `node` match against the entry identity.
    pub fn matches(&self, predicates: &[(String, String)]) -> bool {
        predicates.iter().all(|(key, value)| {
            if key.eq_ignore_ascii_case("name") {
                return self.sensor.eq_ignore_ascii_case(value);
            }
            if key.eq_ignore_ascii_case("node") {
                return self.node.to_string().eq_ignore_ascii_case(value)
                    || self.node.as_u64().to_string() == *value;
            }
            self.metadata
                .iter()
                .any(|(k, v)| k.eq_ignore_ascii_case(key) && v.eq_ignore_ascii_case(value))
        })
    }
}

/// Statistics kept by the directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Registrations processed.
    pub registrations: u64,
    /// Deregistrations processed.
    pub deregistrations: u64,
    /// Lookups served.
    pub lookups: u64,
}

/// The (logically distributed) virtual sensor directory.
#[derive(Debug, Default)]
pub struct Directory {
    inner: RwLock<DirectoryInner>,
}

#[derive(Debug, Default)]
struct DirectoryInner {
    entries: HashMap<(NodeId, String), DirectoryEntry>,
    stats: DirectoryStats,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Publishes (or refreshes) a virtual sensor.
    pub fn register(
        &self,
        node: NodeId,
        sensor: &str,
        metadata: Vec<(String, String)>,
    ) -> GsnResult<()> {
        if sensor.trim().is_empty() {
            return Err(GsnError::descriptor(
                "cannot register an unnamed virtual sensor",
            ));
        }
        let mut inner = self.inner.write();
        inner.stats.registrations += 1;
        inner.entries.insert(
            (node, sensor.to_ascii_lowercase()),
            DirectoryEntry {
                node,
                sensor: sensor.to_ascii_lowercase(),
                metadata,
            },
        );
        Ok(())
    }

    /// Removes a virtual sensor.
    pub fn deregister(&self, node: NodeId, sensor: &str) -> GsnResult<()> {
        let mut inner = self.inner.write();
        inner.stats.deregistrations += 1;
        match inner.entries.remove(&(node, sensor.to_ascii_lowercase())) {
            Some(_) => Ok(()),
            None => Err(GsnError::not_found(format!(
                "virtual sensor `{sensor}` is not registered by {node}"
            ))),
        }
    }

    /// Removes every entry published by a node (node shutdown).
    pub fn deregister_node(&self, node: NodeId) -> usize {
        let mut inner = self.inner.write();
        let before = inner.entries.len();
        inner.entries.retain(|(n, _), _| *n != node);
        let removed = before - inner.entries.len();
        inner.stats.deregistrations += removed as u64;
        removed
    }

    /// Finds every entry matching all predicates, ordered by (node, sensor) for
    /// deterministic results.
    pub fn lookup(&self, predicates: &[(String, String)]) -> Vec<DirectoryEntry> {
        let mut inner = self.inner.write();
        inner.stats.lookups += 1;
        let mut matches: Vec<DirectoryEntry> = inner
            .entries
            .values()
            .filter(|e| e.matches(predicates))
            .cloned()
            .collect();
        matches.sort_by(|a, b| (a.node, &a.sensor).cmp(&(b.node, &b.sensor)));
        matches
    }

    /// Convenience wrapper: finds the single best match for a remote stream source,
    /// returning an error when nothing matches.
    pub fn resolve_one(&self, predicates: &[(String, String)]) -> GsnResult<DirectoryEntry> {
        self.lookup(predicates).into_iter().next().ok_or_else(|| {
            GsnError::not_found(format!(
                "no virtual sensor matches predicates [{}]",
                predicates
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    /// Every registered entry (ordered).
    pub fn entries(&self) -> Vec<DirectoryEntry> {
        self.lookup(&[])
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    /// True when no entries are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Directory statistics.
    pub fn stats(&self) -> DirectoryStats {
        self.inner.read().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    fn populated() -> Directory {
        let d = Directory::new();
        d.register(
            NodeId::new(1),
            "bc143-temp",
            meta(&[("type", "temperature"), ("location", "bc143")]),
        )
        .unwrap();
        d.register(
            NodeId::new(1),
            "bc143-cam",
            meta(&[("type", "camera"), ("location", "bc143")]),
        )
        .unwrap();
        d.register(
            NodeId::new(2),
            "bc144-temp",
            meta(&[("type", "temperature"), ("location", "bc144")]),
        )
        .unwrap();
        d
    }

    #[test]
    fn register_and_lookup_by_predicates() {
        let d = populated();
        assert_eq!(d.len(), 3);
        let temps = d.lookup(&meta(&[("type", "temperature")]));
        assert_eq!(temps.len(), 2);
        let bc143_temp = d.lookup(&meta(&[("type", "temperature"), ("location", "bc143")]));
        assert_eq!(bc143_temp.len(), 1);
        assert_eq!(bc143_temp[0].sensor, "bc143-temp");
        assert!(d.lookup(&meta(&[("type", "humidity")])).is_empty());
        // Empty predicates match everything.
        assert_eq!(d.lookup(&[]).len(), 3);
        assert_eq!(d.entries().len(), 3);
    }

    #[test]
    fn lookup_is_case_insensitive_and_supports_reserved_keys() {
        let d = populated();
        assert_eq!(d.lookup(&meta(&[("TYPE", "Temperature")])).len(), 2);
        assert_eq!(d.lookup(&meta(&[("name", "BC143-TEMP")])).len(), 1);
        assert_eq!(d.lookup(&meta(&[("node", "2")])).len(), 1);
        assert_eq!(d.lookup(&meta(&[("node", "node-1")])).len(), 2);
    }

    #[test]
    fn resolve_one_picks_deterministically() {
        let d = populated();
        let entry = d.resolve_one(&meta(&[("type", "temperature")])).unwrap();
        assert_eq!(entry.node, NodeId::new(1)); // lowest node id wins
        assert!(d.resolve_one(&meta(&[("type", "sonar")])).is_err());
    }

    #[test]
    fn reregistration_replaces_metadata() {
        let d = populated();
        d.register(NodeId::new(1), "bc143-temp", meta(&[("type", "humidity")]))
            .unwrap();
        assert_eq!(d.len(), 3);
        assert!(d
            .lookup(&meta(&[("type", "temperature"), ("location", "bc143")]))
            .is_empty());
        assert_eq!(d.lookup(&meta(&[("type", "humidity")])).len(), 1);
    }

    #[test]
    fn deregister_sensor_and_node() {
        let d = populated();
        d.deregister(NodeId::new(1), "bc143-cam").unwrap();
        assert_eq!(d.len(), 2);
        assert!(d.deregister(NodeId::new(1), "bc143-cam").is_err());
        assert_eq!(d.deregister_node(NodeId::new(1)), 1);
        assert_eq!(d.deregister_node(NodeId::new(1)), 0);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn empty_names_are_rejected() {
        let d = Directory::new();
        assert!(d.register(NodeId::new(1), "  ", vec![]).is_err());
    }

    #[test]
    fn stats_count_operations() {
        let d = populated();
        d.lookup(&[]);
        d.lookup(&[]);
        let stats = d.stats();
        assert_eq!(stats.registrations, 3);
        assert_eq!(stats.lookups, 2);
        d.deregister(NodeId::new(2), "bc144-temp").unwrap();
        assert_eq!(d.stats().deregistrations, 1);
    }
}
