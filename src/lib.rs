//! # GSN-RS
//!
//! A Rust reproduction of **"A Middleware for Fast and Flexible Sensor Network
//! Deployment"** (Aberer, Hauswirth, Salehi — VLDB 2006): the Global Sensor Networks
//! middleware.
//!
//! This facade crate re-exports the public API of every workspace crate so applications
//! can depend on a single `gsn` crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `gsn-types` | values, schemas, stream elements, clocks, errors |
//! | [`sql`] | `gsn-sql` | the embedded SQL engine (parser, planner, optimizer, executor) |
//! | [`storage`] | `gsn-storage` | windowed stream tables, the persistent page engine (buffer pool + WAL) and the storage manager |
//! | [`xml`] | `gsn-xml` | XML parsing and virtual sensor deployment descriptors |
//! | [`wrappers`] | `gsn-wrappers` | the wrapper trait, registry and simulated devices |
//! | [`network`] | `gsn-network` | the simulated P2P network, directory, access control, integrity |
//! | [`container`] | `gsn-core` | the GSN container, virtual sensors, query manager, notifications, federation |
//!
//! The most common entry points are re-exported at the crate root.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use gsn::{ContainerConfig, GsnContainer};
//! use gsn::types::{Duration, SimulatedClock};
//!
//! // A container on a simulated clock, hosting one declaratively deployed virtual sensor.
//! let clock = SimulatedClock::new();
//! let mut node = GsnContainer::new(ContainerConfig::default(), Arc::new(clock.clone()));
//! node.deploy_xml(r#"
//!   <virtual-sensor name="bc143-temperature">
//!     <output-structure><field name="avg_temp" type="double"/></output-structure>
//!     <input-stream name="main">
//!       <stream-source alias="src1" storage-size="30s">
//!         <address wrapper="mote"><predicate key="interval" val="500"/></address>
//!         <query>select avg(temperature) as avg_temp from WRAPPER</query>
//!       </stream-source>
//!       <query>select * from src1</query>
//!     </input-stream>
//!   </virtual-sensor>"#).unwrap();
//!
//! // Drive the simulated clock: ten seconds of sensing in microseconds of test time.
//! for _ in 0..20 {
//!     clock.advance(Duration::from_millis(500));
//!     node.step();
//! }
//!
//! // Plain SQL over the virtual sensor's output stream.
//! let answer = node.query("select count(*) as n, avg(avg_temp) from bc143_temperature").unwrap();
//! assert_eq!(answer.rows()[0][0], gsn::types::Value::Integer(20));
//!
//! // Or stream the result through a pull-based cursor: rows arrive in batches, and a
//! // LIMIT stops reading storage as soon as it is satisfied (O(limit), not O(table)).
//! let mut cursor = node.query_cursor("select avg_temp from bc143_temperature limit 5").unwrap();
//! assert_eq!(cursor.next_batch(5).unwrap().row_count(), 5);
//! assert_eq!(cursor.rows_scanned(), 5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Core data types (`gsn-types`).
pub use gsn_types as types;

/// The embedded SQL engine (`gsn-sql`).
pub use gsn_sql as sql;

/// Windowed stream storage (`gsn-storage`).
pub use gsn_storage as storage;

/// XML parsing and deployment descriptors (`gsn-xml`).
pub use gsn_xml as xml;

/// Sensor platform wrappers (`gsn-wrappers`).
pub use gsn_wrappers as wrappers;

/// The simulated peer-to-peer substrate (`gsn-network`).
pub use gsn_network as network;

/// The distributed federation tier: placement ring + replicated directory (`gsn-federation`).
pub use gsn_federation as federation;

/// The GSN container and federation (`gsn-core`).
pub use gsn_core as container;

/// Metrics, tracing and the slow-query log (`gsn-telemetry`).
pub use gsn_telemetry as telemetry;

// Convenience re-exports of the most common entry points.
pub use gsn_core::{
    ContainerConfig, Federation, GsnContainer, Mesh, Notification, QueryCursor, RemoteQueryResult,
    StepReport,
};
pub use gsn_storage::WindowSpec;
pub use gsn_types::{GsnError, GsnResult, StreamElement, Timestamp, Value};
pub use gsn_xml::VirtualSensorDescriptor;
