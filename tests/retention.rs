//! The storage lifecycle subsystem, end to end: bounded on-disk footprint under
//! continuous ingest, delta-cursor stability under concurrent segment reclamation,
//! and disk-spilled windows answering exactly like all-memory ones.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gsn::container::ContainerConfig;
use gsn::storage::{
    CatalogView, PersistentOptions, Retention, SpillOptions, StorageManager, StreamTable,
    WindowSpec,
};
use gsn::types::{DataType, Duration, SimulatedClock, StreamSchema, Timestamp, Value};
use gsn::xml::{AddressSpec, InputStreamSpec, StreamSourceSpec, VirtualSensorDescriptor};
use gsn::GsnContainer;
use proptest::prelude::*;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "gsn-retention-test-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn schema() -> Arc<StreamSchema> {
    Arc::new(
        StreamSchema::from_pairs(&[("v", DataType::Integer), ("payload", DataType::Binary)])
            .unwrap(),
    )
}

fn insert(table: &mut StreamTable, v: i64, ts: i64, payload: usize) {
    table
        .insert_values(
            vec![Value::Integer(v), Value::binary(vec![v as u8; payload])],
            Timestamp(ts),
        )
        .unwrap();
}

// ---------------------------------------------------------------------------------------
// Acceptance: bounded durable tables keep a bounded disk footprint
// ---------------------------------------------------------------------------------------

/// A bounded durable table under continuous ingest, with the maintenance pass running
/// periodically, keeps its on-disk footprint within 2 segments of its live data — the
/// file no longer grows forever.
#[test]
fn bounded_durable_table_footprint_stays_within_two_segments_of_live() {
    let dir = temp_dir("bounded-footprint");
    let mut table = StreamTable::persistent(
        "bounded",
        schema(),
        Retention::Elements(500),
        &dir,
        PersistentOptions {
            segment_pages: 4,
            pool_pages: 8,
            ..Default::default()
        },
    )
    .unwrap();

    let mut reclaimed = 0u64;
    for i in 1..=20_000i64 {
        insert(&mut table, i, i, 64);
        if i % 500 == 0 {
            reclaimed += table.reclaim().unwrap().bytes_reclaimed;
            let usage = table.disk_usage().unwrap();
            assert!(
                usage.total_segments <= usage.live_segments + 2,
                "footprint drifted at row {i}: {} segments on disk, {} live",
                usage.total_segments,
                usage.live_segments
            );
        }
    }
    assert!(reclaimed > 0, "maintenance must actually free file bytes");
    let usage = table.disk_usage().unwrap();
    assert!(usage.reclaimed_segments > 10, "{usage:?}");

    // Retention and reclamation never touched the live tail.
    let tail = table.window_view(WindowSpec::Count(500), Timestamp::MAX);
    assert_eq!(tail.len(), 500);
    assert_eq!(
        tail.last().unwrap().value("V"),
        Some(Value::Integer(20_000))
    );
    assert_eq!(
        tail.first().unwrap().value("V"),
        Some(Value::Integer(19_501))
    );
}

// ---------------------------------------------------------------------------------------
// Delta cursors vs concurrent reclamation
// ---------------------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A delta cursor opened over a bounded durable table keeps yielding exactly the
    /// expected suffix while head segments are deleted and the boundary segment is
    /// compacted *between its pulls*.
    #[test]
    fn delta_cursor_parity_under_concurrent_compaction(
        rows in 80i64..300,
        keep in 20usize..60,
        payload in 8usize..96,
        segment_pages in 1u32..5,
        after_offset in 0u64..40,
        reclaim_every in 1usize..4,
    ) {
        let dir = temp_dir("delta-compaction");
        let mut table = StreamTable::persistent(
            "t",
            schema(),
            Retention::Elements(keep),
            &dir,
            PersistentOptions {
                segment_pages,
                pool_pages: 4,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 1..=rows {
            insert(&mut table, i, i, payload);
        }
        // Retention already pruned on insert (page-granular); the oldest live row may
        // sit below `keep` rows from the end.
        let first_live = table.first_live_sequence().unwrap().unwrap();
        let after = first_live.saturating_add(after_offset).min(rows as u64);
        let expected: Vec<i64> = ((after + 1) as i64..=rows).collect();

        let mut scan = table.open_delta_scan(after).unwrap();
        let mut got: Vec<i64> = Vec::new();
        let mut pulls = 0usize;
        while let Some(batch) = table.scan_next(&mut scan).unwrap() {
            got.extend(batch.iter().map(|e| e.value("V").unwrap().as_integer().unwrap()));
            pulls += 1;
            if pulls.is_multiple_of(reclaim_every) {
                // Reclaim dead segments mid-scan: deletion and compaction move live
                // rows to fresh pages, but never renumber them.
                table.reclaim().unwrap();
            }
        }
        prop_assert_eq!(got, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A disk-spilled window answers every declared window exactly like an all-memory
    /// table fed the same elements — materialised relations and pull cursors alike.
    #[test]
    fn spilled_window_matches_all_memory_queries(
        rows in 50i64..400,
        payload in 8usize..128,
        budget in 512usize..4_096,
        horizon_ms in 50i64..4_000,
    ) {
        let dir = temp_dir("spill-parity");
        let retention = Retention::Horizon(Duration::from_millis(horizon_ms));
        let mut mem = StreamTable::new("w", schema(), retention);
        let mut spilled = StreamTable::spilling(
            "w",
            schema(),
            retention,
            &dir,
            SpillOptions {
                budget_bytes: budget,
                persistent: PersistentOptions {
                    segment_pages: 2,
                    pool_pages: 4,
                    ..Default::default()
                },
            },
        )
        .unwrap();
        for i in 1..=rows {
            insert(&mut mem, i, i * 10, payload);
            insert(&mut spilled, i, i * 10, payload);
        }
        let now = Timestamp(rows * 10);
        for window in [
            WindowSpec::Time(Duration::from_millis(horizon_ms)),
            WindowSpec::Time(Duration::from_millis(horizon_ms / 2 + 1)),
            WindowSpec::Count(1),
            WindowSpec::LatestOnly,
        ] {
            let a = mem.window_relation("w", window, now).unwrap();
            let b = spilled.window_relation("w", window, now).unwrap();
            prop_assert_eq!(a.rows(), b.rows(), "window {:?}", window);

            // The pull-based cursor path agrees with the materialised one.
            let mut state = spilled.open_scan(window, now).unwrap();
            let mut streamed = 0usize;
            while let Some(batch) = spilled.scan_next(&mut state).unwrap() {
                streamed += batch.len();
            }
            prop_assert_eq!(streamed, b.rows().len(), "cursor {:?}", window);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------------------
// Spilled windows at the manager level: bounded memory, correct SQL
// ---------------------------------------------------------------------------------------

/// A large time window spilled to disk queries correctly through SQL while the shared
/// buffer pool stays within its page budget (the scaled-down version of the 1M-row
/// acceptance scenario; the `retention` bench runs the full-size one).
#[test]
fn spilled_time_window_queries_in_bounded_memory() {
    let dir = temp_dir("spill-bounded");
    let pool_pages = 8;
    let storage = StorageManager::with_options(gsn::storage::StorageOptions {
        data_dir: Some(dir.clone()),
        persistent: PersistentOptions {
            pool_pages,
            ..Default::default()
        },
        window_spill_bytes: Some(16 * 1024),
        wal_shards: 0,
    });
    let schema = schema();
    storage
        .create_table(
            "window30d",
            Arc::clone(&schema),
            Retention::Horizon(Duration::from_hours(1)),
        )
        .unwrap();
    let total: i64 = 30_000;
    for i in 1..=total {
        let e = gsn::types::StreamElement::new(
            Arc::clone(&schema),
            vec![Value::Integer(i), Value::binary(vec![1u8; 64])],
            Timestamp(i),
        )
        .unwrap();
        storage.insert("window30d", e, Timestamp(i)).unwrap();
    }
    let stats = storage.stats();
    assert_eq!(stats.spilled_tables, 1);
    assert!(
        stats.disk.on_disk_bytes > 0,
        "the window must actually have spilled"
    );
    assert!(stats.pool.resident_pages <= pool_pages);

    let catalog = storage
        .windowed_catalog(
            &[CatalogView::new(
                "w",
                "window30d",
                WindowSpec::Time(Duration::from_hours(1)),
            )],
            Timestamp(total),
        )
        .unwrap();
    let mut engine = gsn::sql::SqlEngine::new();
    let n = engine
        .execute_scalar("select count(*) from w", &catalog)
        .unwrap();
    assert_eq!(n, Value::Integer(total));
    let edges = engine
        .execute("select min(v) as lo, max(v) as hi from w", &catalog)
        .unwrap();
    assert_eq!(edges.rows()[0][0], Value::Integer(1));
    assert_eq!(edges.rows()[0][1], Value::Integer(total));

    let stats = storage.stats();
    assert!(
        stats.pool.resident_pages <= pool_pages,
        "scan blew the pool budget: {} > {pool_pages}",
        stats.pool.resident_pages
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------------------
// Container level: spilling stays transparent and deterministic
// ---------------------------------------------------------------------------------------

fn mote_descriptor(name: &str, seed: u32) -> VirtualSensorDescriptor {
    VirtualSensorDescriptor::builder(name)
        .unwrap()
        .output_field("avg_temp", DataType::Double)
        .unwrap()
        .input_stream(
            InputStreamSpec::new("main", "select * from src1").with_source(
                StreamSourceSpec::new(
                    "src1",
                    AddressSpec::new("mote")
                        .with_predicate("interval", "100")
                        .with_predicate("seed", &seed.to_string()),
                    "select avg(temperature) as avg_temp from WRAPPER",
                )
                .with_window(WindowSpec::Time(Duration::from_secs(30))),
            ),
        )
        .build()
        .unwrap()
}

fn run_spill_workload(workers: usize, spill: bool) -> Vec<Vec<Vec<Value>>> {
    let clock = SimulatedClock::new();
    let mut config = ContainerConfig::default().with_workers(workers);
    if spill {
        let dir = temp_dir(&format!("spill-container-w{workers}"));
        config = config.with_data_dir(dir).with_window_spill(2 * 1024);
        config.maintenance_interval_steps = 2;
    }
    let mut node = GsnContainer::new(config, Arc::new(clock.clone()));
    let names: Vec<String> = (0..6).map(|i| format!("mote-{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        node.deploy(mote_descriptor(name, i as u32)).unwrap();
    }
    for _ in 0..5 {
        clock.advance(Duration::from_secs(1));
        node.step();
    }
    if spill {
        assert!(
            node.storage().stats().spilled_tables > 0,
            "spill workload must actually create spill-capable tables"
        );
    }
    names
        .iter()
        .map(|name| {
            node.query(&format!(
                "select pk, avg_temp from {}",
                name.replace('-', "_")
            ))
            .unwrap()
            .rows()
            .to_vec()
        })
        .collect()
}

/// Turning window spilling on changes nothing observable: every sensor's output table
/// is byte-identical to the all-memory run, with workers=1 and workers=4 alike.
#[test]
fn spilled_windows_are_transparent_and_worker_deterministic() {
    let baseline = run_spill_workload(1, false);
    let spilled_seq = run_spill_workload(1, true);
    assert_eq!(baseline, spilled_seq, "spilling changed query results");
    let spilled_par = run_spill_workload(4, true);
    assert_eq!(
        spilled_seq, spilled_par,
        "workers=4 diverged under spilling"
    );
}

/// The maintenance pass scheduled by the container step loop reclaims space for
/// bounded durable tables without disturbing their queryable history.
#[test]
fn container_maintenance_reclaims_bounded_durable_tables() {
    let dir = temp_dir("container-maintenance");
    let clock = SimulatedClock::new();
    let mut config = ContainerConfig::default().with_data_dir(&dir);
    config.storage_segment_pages = 2;
    config.maintenance_interval_steps = 1;
    let mut node = GsnContainer::new(config, Arc::new(clock.clone()));
    let descriptor = VirtualSensorDescriptor::builder("rolling")
        .unwrap()
        .output_field("avg_temp", DataType::Double)
        .unwrap()
        .storage_backend(gsn::xml::StorageBackendChoice::Disk)
        .output_history(WindowSpec::Count(40))
        .input_stream(
            InputStreamSpec::new("main", "select * from src1").with_source(
                StreamSourceSpec::new(
                    "src1",
                    AddressSpec::new("mote").with_predicate("interval", "50"),
                    "select avg(temperature) as avg_temp from WRAPPER",
                )
                .with_window(WindowSpec::Count(10)),
            ),
        )
        .build()
        .unwrap();
    node.deploy(descriptor).unwrap();
    for _ in 0..40 {
        clock.advance(Duration::from_secs(1));
        node.step();
    }
    let report = node.maintain_storage();
    assert!(report.ran);
    let stats = node.storage().stats();
    assert!(
        stats.maintenance.passes > 1,
        "step loop must schedule maintenance: {:?}",
        stats.maintenance
    );
    assert!(
        stats.disk.reclaimed_bytes > 0,
        "bounded durable table never reclaimed: {:?}",
        stats.disk
    );
    let usage = &stats
        .tables_on_disk
        .iter()
        .find(|t| t.name == "rolling")
        .expect("rolling table reports disk usage")
        .usage;
    assert!(usage.total_segments <= usage.live_segments + 2, "{usage:?}");

    // The status render surfaces the per-table footprint and reclamation counters.
    let rendered = node.status().render();
    assert!(rendered.contains("table rolling:"), "{rendered}");
    assert!(rendered.contains("segments live"), "{rendered}");
    assert!(rendered.contains("maintenance:"), "{rendered}");

    // History is intact: the newest 40 outputs are queryable, sequences contiguous.
    let rows = node
        .query("select count(*) as n, max(pk) as maxpk from rolling")
        .unwrap();
    let n = rows.rows()[0][0].as_integer().unwrap();
    let maxpk = rows.rows()[0][1].as_integer().unwrap();
    assert!(n >= 40, "history lost: {n}");
    assert_eq!(maxpk as u64, node.status().sensors[0].stats.outputs);
    drop(node);
    std::fs::remove_dir_all(&dir).ok();
}
