//! Integration tests for the peer-to-peer federation: discovery through the directory,
//! remote virtual sensors across nodes, link quality, partitions and access control.

use gsn::network::{LinkSpec, Operation, Principal};
use gsn::types::{DataType, Duration};
use gsn::xml::{AddressSpec, InputStreamSpec, StreamSourceSpec, VirtualSensorDescriptor};
use gsn::{Federation, WindowSpec};

fn temperature_producer(name: &str, location: &str, interval_ms: u64) -> VirtualSensorDescriptor {
    VirtualSensorDescriptor::builder(name)
        .unwrap()
        .metadata("type", "temperature")
        .metadata("location", location)
        .output_field("temperature", DataType::Double)
        .unwrap()
        .permanent_storage(true)
        .input_stream(
            InputStreamSpec::new("main", "select * from src").with_source(
                StreamSourceSpec::new(
                    "src",
                    AddressSpec::new("mote").with_predicate("interval", &interval_ms.to_string()),
                    "select avg(temperature) as temperature from WRAPPER",
                )
                .with_window(WindowSpec::Count(5)),
            ),
        )
        .build()
        .unwrap()
}

fn remote_consumer(name: &str, location: &str) -> VirtualSensorDescriptor {
    VirtualSensorDescriptor::builder(name)
        .unwrap()
        .output_field("temperature", DataType::Double)
        .unwrap()
        .permanent_storage(true)
        .input_stream(
            InputStreamSpec::new("main", "select * from r").with_source(
                StreamSourceSpec::new(
                    "r",
                    AddressSpec::new("remote")
                        .with_predicate("type", "temperature")
                        .with_predicate("location", location),
                    "select avg(temperature) as temperature from WRAPPER",
                )
                .with_window(WindowSpec::Time(Duration::from_secs(10))),
            ),
        )
        .build()
        .unwrap()
}

#[test]
fn discovery_and_remote_streaming_between_nodes() {
    let mut fed = Federation::new();
    let producer = fed.add_node("producer").unwrap();
    let consumer = fed.add_node("consumer").unwrap();
    fed.set_link(producer, consumer, LinkSpec::lan());

    fed.node_mut(producer)
        .unwrap()
        .deploy(temperature_producer("bc143-temp", "bc143", 200))
        .unwrap();
    fed.node_mut(consumer)
        .unwrap()
        .deploy(remote_consumer("bc143-follower", "bc143"))
        .unwrap();

    // Directory-level discovery by arbitrary property combinations.
    let by_type = fed
        .directory()
        .lookup(&[("type".into(), "temperature".into())]);
    assert_eq!(by_type.len(), 1);
    let by_both = fed.directory().lookup(&[
        ("type".into(), "temperature".into()),
        ("location".into(), "bc143".into()),
    ]);
    assert_eq!(by_both.len(), 1);
    assert!(fed
        .directory()
        .lookup(&[("location".into(), "elsewhere".into())])
        .is_empty());

    let report = fed.run_for(Duration::from_secs(5), Duration::from_millis(200));
    assert!(report.remote_arrivals > 0);
    assert_eq!(report.errors, 0);

    let produced = fed
        .node_mut(producer)
        .unwrap()
        .query("select count(*) from bc143_temp")
        .unwrap()
        .rows()[0][0]
        .as_integer()
        .unwrap();
    let consumed = fed
        .node_mut(consumer)
        .unwrap()
        .query("select count(*) from bc143_follower")
        .unwrap()
        .rows()[0][0]
        .as_integer()
        .unwrap();
    assert!(produced >= 20);
    assert!(consumed > 0);
    // The consumer can lose a little to subscription latency but must track the producer.
    assert!(
        consumed as f64 >= produced as f64 * 0.5,
        "consumer saw only {consumed} of {produced} elements"
    );

    // Undeploying the producer removes it from the directory.
    fed.node_mut(producer)
        .unwrap()
        .undeploy("bc143-temp")
        .unwrap();
    assert!(fed
        .directory()
        .lookup(&[("type".into(), "temperature".into())])
        .is_empty());
}

#[test]
fn three_node_chain_of_remote_sensors() {
    // node A produces; node B averages A remotely; node C averages B remotely.
    let mut fed = Federation::new();
    let a = fed.add_node("a").unwrap();
    let b = fed.add_node("b").unwrap();
    let c = fed.add_node("c").unwrap();

    fed.node_mut(a)
        .unwrap()
        .deploy(temperature_producer("origin", "floor-a", 200))
        .unwrap();
    // B's sensor both consumes remotely and is itself published with new metadata.
    let mut b_sensor = remote_consumer("floor-a-average", "floor-a");
    b_sensor.metadata = vec![
        ("type".to_owned(), "temperature-aggregate".to_owned()),
        ("location".to_owned(), "floor-a".to_owned()),
    ];
    fed.node_mut(b).unwrap().deploy(b_sensor).unwrap();

    let c_sensor = VirtualSensorDescriptor::builder("campus-view")
        .unwrap()
        .output_field("temperature", DataType::Double)
        .unwrap()
        .permanent_storage(true)
        .input_stream(
            InputStreamSpec::new("main", "select * from agg").with_source(
                StreamSourceSpec::new(
                    "agg",
                    AddressSpec::new("remote").with_predicate("type", "temperature-aggregate"),
                    "select avg(temperature) as temperature from WRAPPER",
                )
                .with_window(WindowSpec::Count(10)),
            ),
        )
        .build()
        .unwrap();
    fed.node_mut(c).unwrap().deploy(c_sensor).unwrap();

    fed.run_for(Duration::from_secs(10), Duration::from_millis(200));
    let end_of_chain = fed
        .node_mut(c)
        .unwrap()
        .query("select count(*), avg(temperature) from campus_view")
        .unwrap();
    let n = end_of_chain.rows()[0][0].as_integer().unwrap();
    assert!(n > 0, "data did not flow across the two-hop chain");
    let t = end_of_chain.rows()[0][1].as_double().unwrap();
    assert!((10.0..=40.0).contains(&t));
}

#[test]
fn lossy_links_still_deliver_a_usable_stream() {
    let mut fed = Federation::new();
    let producer = fed.add_node("producer").unwrap();
    let consumer = fed.add_node("consumer").unwrap();
    fed.set_link(producer, consumer, LinkSpec::wireless(20, 0.3));

    fed.node_mut(producer)
        .unwrap()
        .deploy(temperature_producer("lossy-origin", "roof", 100))
        .unwrap();
    fed.node_mut(consumer)
        .unwrap()
        .deploy(remote_consumer("roof-follower", "roof"))
        .unwrap();
    fed.run_for(Duration::from_secs(10), Duration::from_millis(100));

    let stats = fed.network().stats();
    assert!(stats.dropped > 0, "the lossy link should drop something");
    let consumed = fed
        .node_mut(consumer)
        .unwrap()
        .query("select count(*) from roof_follower")
        .unwrap()
        .rows()[0][0]
        .as_integer()
        .unwrap();
    assert!(
        consumed > 10,
        "only {consumed} elements made it through the lossy link"
    );
}

#[test]
fn subscription_refused_by_access_control() {
    let mut fed = Federation::new();
    let producer = fed.add_node("producer").unwrap();
    let consumer = fed.add_node("consumer").unwrap();

    fed.node_mut(producer)
        .unwrap()
        .deploy(temperature_producer("vault-temp", "vault", 100))
        .unwrap();
    // Only a specific operator may subscribe; the consumer node is not it.
    fed.node(producer)
        .unwrap()
        .access_control()
        .restrict_sensor("vault-temp", vec![Principal::named("operator")]);
    assert!(!fed.node(producer).unwrap().access_control().check(
        &Principal::named(&consumer.to_string()),
        Operation::Subscribe,
        "vault-temp"
    ));

    fed.node_mut(consumer)
        .unwrap()
        .deploy(remote_consumer("vault-follower", "vault"))
        .unwrap();
    fed.run_for(Duration::from_secs(3), Duration::from_millis(100));

    // The producer keeps producing, but nothing reaches the refused subscriber.
    let consumed = fed
        .node_mut(consumer)
        .unwrap()
        .query("select count(*) from vault_follower")
        .unwrap()
        .rows()[0][0]
        .as_integer()
        .unwrap();
    assert_eq!(consumed, 0);
    let producer_status = fed.node(producer).unwrap().status();
    assert_eq!(producer_status.notifications.remote_delivered, 0);
}
