//! Integration tests for the peer-to-peer federation: discovery through the directory,
//! remote virtual sensors across nodes, link quality, partitions and access control —
//! plus the mesh tier: gossip-replicated directories, scatter-gather federated queries
//! and cursor prefetch pipelining.

use gsn::network::{LinkSpec, Operation, Principal};
use gsn::types::{DataType, Duration};
use gsn::xml::{AddressSpec, InputStreamSpec, StreamSourceSpec, VirtualSensorDescriptor};
use gsn::{Federation, Mesh, WindowSpec};
use proptest::prelude::*;

fn temperature_producer(name: &str, location: &str, interval_ms: u64) -> VirtualSensorDescriptor {
    VirtualSensorDescriptor::builder(name)
        .unwrap()
        .metadata("type", "temperature")
        .metadata("location", location)
        .output_field("temperature", DataType::Double)
        .unwrap()
        .permanent_storage(true)
        .input_stream(
            InputStreamSpec::new("main", "select * from src").with_source(
                StreamSourceSpec::new(
                    "src",
                    AddressSpec::new("mote").with_predicate("interval", &interval_ms.to_string()),
                    "select avg(temperature) as temperature from WRAPPER",
                )
                .with_window(WindowSpec::Count(5)),
            ),
        )
        .build()
        .unwrap()
}

fn remote_consumer(name: &str, location: &str) -> VirtualSensorDescriptor {
    VirtualSensorDescriptor::builder(name)
        .unwrap()
        .output_field("temperature", DataType::Double)
        .unwrap()
        .permanent_storage(true)
        .input_stream(
            InputStreamSpec::new("main", "select * from r").with_source(
                StreamSourceSpec::new(
                    "r",
                    AddressSpec::new("remote")
                        .with_predicate("type", "temperature")
                        .with_predicate("location", location),
                    "select avg(temperature) as temperature from WRAPPER",
                )
                .with_window(WindowSpec::Time(Duration::from_secs(10))),
            ),
        )
        .build()
        .unwrap()
}

#[test]
fn discovery_and_remote_streaming_between_nodes() {
    let mut fed = Federation::new();
    let producer = fed.add_node("producer").unwrap();
    let consumer = fed.add_node("consumer").unwrap();
    fed.set_link(producer, consumer, LinkSpec::lan());

    fed.node_mut(producer)
        .unwrap()
        .deploy(temperature_producer("bc143-temp", "bc143", 200))
        .unwrap();
    fed.node_mut(consumer)
        .unwrap()
        .deploy(remote_consumer("bc143-follower", "bc143"))
        .unwrap();

    // Directory-level discovery by arbitrary property combinations.
    let by_type = fed
        .directory()
        .lookup(&[("type".into(), "temperature".into())]);
    assert_eq!(by_type.len(), 1);
    let by_both = fed.directory().lookup(&[
        ("type".into(), "temperature".into()),
        ("location".into(), "bc143".into()),
    ]);
    assert_eq!(by_both.len(), 1);
    assert!(fed
        .directory()
        .lookup(&[("location".into(), "elsewhere".into())])
        .is_empty());

    let report = fed.run_for(Duration::from_secs(5), Duration::from_millis(200));
    assert!(report.remote_arrivals > 0);
    assert_eq!(report.errors, 0);

    let produced = fed
        .node_mut(producer)
        .unwrap()
        .query("select count(*) from bc143_temp")
        .unwrap()
        .rows()[0][0]
        .as_integer()
        .unwrap();
    let consumed = fed
        .node_mut(consumer)
        .unwrap()
        .query("select count(*) from bc143_follower")
        .unwrap()
        .rows()[0][0]
        .as_integer()
        .unwrap();
    assert!(produced >= 20);
    assert!(consumed > 0);
    // The consumer can lose a little to subscription latency but must track the producer.
    assert!(
        consumed as f64 >= produced as f64 * 0.5,
        "consumer saw only {consumed} of {produced} elements"
    );

    // Undeploying the producer removes it from the directory.
    fed.node_mut(producer)
        .unwrap()
        .undeploy("bc143-temp")
        .unwrap();
    assert!(fed
        .directory()
        .lookup(&[("type".into(), "temperature".into())])
        .is_empty());
}

#[test]
fn three_node_chain_of_remote_sensors() {
    // node A produces; node B averages A remotely; node C averages B remotely.
    let mut fed = Federation::new();
    let a = fed.add_node("a").unwrap();
    let b = fed.add_node("b").unwrap();
    let c = fed.add_node("c").unwrap();

    fed.node_mut(a)
        .unwrap()
        .deploy(temperature_producer("origin", "floor-a", 200))
        .unwrap();
    // B's sensor both consumes remotely and is itself published with new metadata.
    let mut b_sensor = remote_consumer("floor-a-average", "floor-a");
    b_sensor.metadata = vec![
        ("type".to_owned(), "temperature-aggregate".to_owned()),
        ("location".to_owned(), "floor-a".to_owned()),
    ];
    fed.node_mut(b).unwrap().deploy(b_sensor).unwrap();

    let c_sensor = VirtualSensorDescriptor::builder("campus-view")
        .unwrap()
        .output_field("temperature", DataType::Double)
        .unwrap()
        .permanent_storage(true)
        .input_stream(
            InputStreamSpec::new("main", "select * from agg").with_source(
                StreamSourceSpec::new(
                    "agg",
                    AddressSpec::new("remote").with_predicate("type", "temperature-aggregate"),
                    "select avg(temperature) as temperature from WRAPPER",
                )
                .with_window(WindowSpec::Count(10)),
            ),
        )
        .build()
        .unwrap();
    fed.node_mut(c).unwrap().deploy(c_sensor).unwrap();

    fed.run_for(Duration::from_secs(10), Duration::from_millis(200));
    let end_of_chain = fed
        .node_mut(c)
        .unwrap()
        .query("select count(*), avg(temperature) from campus_view")
        .unwrap();
    let n = end_of_chain.rows()[0][0].as_integer().unwrap();
    assert!(n > 0, "data did not flow across the two-hop chain");
    let t = end_of_chain.rows()[0][1].as_double().unwrap();
    assert!((10.0..=40.0).contains(&t));
}

#[test]
fn lossy_links_still_deliver_a_usable_stream() {
    let mut fed = Federation::new();
    let producer = fed.add_node("producer").unwrap();
    let consumer = fed.add_node("consumer").unwrap();
    fed.set_link(producer, consumer, LinkSpec::wireless(20, 0.3));

    fed.node_mut(producer)
        .unwrap()
        .deploy(temperature_producer("lossy-origin", "roof", 100))
        .unwrap();
    fed.node_mut(consumer)
        .unwrap()
        .deploy(remote_consumer("roof-follower", "roof"))
        .unwrap();
    fed.run_for(Duration::from_secs(10), Duration::from_millis(100));

    let stats = fed.network().stats();
    assert!(stats.dropped > 0, "the lossy link should drop something");
    let consumed = fed
        .node_mut(consumer)
        .unwrap()
        .query("select count(*) from roof_follower")
        .unwrap()
        .rows()[0][0]
        .as_integer()
        .unwrap();
    assert!(
        consumed > 10,
        "only {consumed} elements made it through the lossy link"
    );
}

#[test]
fn subscription_refused_by_access_control() {
    let mut fed = Federation::new();
    let producer = fed.add_node("producer").unwrap();
    let consumer = fed.add_node("consumer").unwrap();

    fed.node_mut(producer)
        .unwrap()
        .deploy(temperature_producer("vault-temp", "vault", 100))
        .unwrap();
    // Only a specific operator may subscribe; the consumer node is not it.
    fed.node(producer)
        .unwrap()
        .access_control()
        .restrict_sensor("vault-temp", vec![Principal::named("operator")]);
    assert!(!fed.node(producer).unwrap().access_control().check(
        &Principal::named(&consumer.to_string()),
        Operation::Subscribe,
        "vault-temp"
    ));

    fed.node_mut(consumer)
        .unwrap()
        .deploy(remote_consumer("vault-follower", "vault"))
        .unwrap();
    fed.run_for(Duration::from_secs(3), Duration::from_millis(100));

    // The producer keeps producing, but nothing reaches the refused subscriber.
    let consumed = fed
        .node_mut(consumer)
        .unwrap()
        .query("select count(*) from vault_follower")
        .unwrap()
        .rows()[0][0]
        .as_integer()
        .unwrap();
    assert_eq!(consumed, 0);
    let producer_status = fed.node(producer).unwrap().status();
    assert_eq!(producer_status.notifications.remote_delivered, 0);
}

// ---------------------------------------------------------------------------------------
// Mesh tier: replicated directory, scatter-gather, prefetch
// ---------------------------------------------------------------------------------------

/// Builds an N-node mesh where every node hosts a shard of the same logical table.
fn sharded_mesh(nodes: usize) -> (Mesh, Vec<gsn::types::NodeId>) {
    let mut mesh = Mesh::new();
    let ids: Vec<_> = (0..nodes)
        .map(|i| mesh.add_node(&format!("shard-{i}")).unwrap())
        .collect();
    for id in &ids {
        mesh.node_mut(*id)
            .unwrap()
            .deploy(temperature_producer("mesh-temp", "mesh", 100))
            .unwrap();
    }
    (mesh, ids)
}

fn shard_count(mesh: &mut Mesh, node: gsn::types::NodeId) -> i64 {
    mesh.node_mut(node)
        .unwrap()
        .query("select count(*) as n from mesh_temp")
        .unwrap()
        .rows()[0][0]
        .as_integer()
        .unwrap()
}

#[test]
fn eight_container_aggregate_ships_only_partial_frames() {
    let (mut mesh, ids) = sharded_mesh(8);
    mesh.run_for(Duration::from_secs(2), Duration::from_millis(100));
    assert!(mesh.replicas_converged(), "gossip did not converge");
    for id in &ids {
        assert_eq!(mesh.node(*id).unwrap().ring_members().len(), 8);
    }

    let before: i64 = ids.iter().map(|n| shard_count(&mut mesh, *n)).sum();
    let rel = mesh
        .federated_query(
            ids[0],
            "select count(*) as n, min(temperature) as lo, max(temperature) as hi \
             from mesh_temp",
            Duration::from_millis(100),
            100,
        )
        .unwrap();
    let after: i64 = ids.iter().map(|n| shard_count(&mut mesh, *n)).sum();
    let n = rel.rows()[0][0].as_integer().unwrap();
    assert!(
        (before..=after).contains(&n),
        "federated count {n} outside [{before}, {after}]"
    );
    let lo = rel.rows()[0][1].as_double().unwrap();
    let hi = rel.rows()[0][2].as_double().unwrap();
    assert!(lo <= hi && (5.0..=45.0).contains(&lo) && (5.0..=45.0).contains(&hi));

    // The acceptance bar for container-side decomposition: an aggregate over eight
    // containers moves ONLY partial-aggregate frames — not a single row batch.
    assert_eq!(mesh.network().sent_of_kind("query-batch"), 0);
    assert_eq!(mesh.network().sent_of_kind("query-request"), 0);
    assert!(mesh.network().sent_of_kind("partial-aggregate-request") >= 7);
    assert!(mesh.network().sent_of_kind("partial-aggregate-reply") >= 7);
}

#[test]
fn federated_aggregate_survives_a_node_leaving_mid_run() {
    let (mut mesh, ids) = sharded_mesh(3);
    mesh.run_for(Duration::from_secs(1), Duration::from_millis(100));
    assert!(mesh.replicas_converged());

    // One container leaves mid-run; its entries tombstone and the ring shrinks, so a
    // coordinator must neither wait on it nor fail the scatter.
    mesh.remove_node(ids[1]).unwrap();
    mesh.run_for(Duration::from_millis(500), Duration::from_millis(100));
    let rel = mesh
        .federated_query(
            ids[2],
            "select count(*) as n from mesh_temp",
            Duration::from_millis(100),
            100,
        )
        .unwrap();
    let survivors: i64 = [ids[0], ids[2]]
        .iter()
        .map(|n| shard_count(&mut mesh, *n))
        .sum();
    let n = rel.rows()[0][0].as_integer().unwrap();
    assert!(
        n > 0 && n <= survivors,
        "count {n} vs survivors {survivors}"
    );
    for id in [ids[0], ids[2]] {
        assert_eq!(mesh.node(id).unwrap().ring_members(), vec![ids[0], ids[2]]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random register/deregister interleavings on four containers whose pairwise links
    /// drop 30% of messages: every replica must converge to the identical record set
    /// within a bounded number of gossip rounds once mutations stop.
    #[test]
    fn random_directory_interleavings_converge_under_loss(
        ops in prop::collection::vec((0usize..4, 0usize..5), 4..16)
    ) {
        let mut mesh = Mesh::new();
        let ids: Vec<_> = (0..4)
            .map(|i| mesh.add_node(&format!("prop-{i}")).unwrap())
            .collect();
        // Loss starts only after the (lossless) join handshakes.
        mesh.set_all_links(LinkSpec::wireless(5, 0.3));

        let mut deployed = [[false; 5]; 4];
        for (node_idx, sensor_idx) in ops {
            let node = ids[node_idx];
            let name = format!("prop-sensor-{sensor_idx}");
            if deployed[node_idx][sensor_idx] {
                mesh.node_mut(node).unwrap().undeploy(&name).unwrap();
            } else {
                mesh.node_mut(node)
                    .unwrap()
                    .deploy(temperature_producer(&name, "prop", 500))
                    .unwrap();
            }
            deployed[node_idx][sensor_idx] = !deployed[node_idx][sensor_idx];
            // A little concurrent traffic between mutations.
            mesh.step(Duration::from_millis(50));
        }

        // Bounded convergence: each 100 ms tick runs one gossip round per node (the
        // interval is two container steps and Mesh steps containers twice per tick).
        let mut converged_after = None;
        for round in 0..150 {
            if mesh.replicas_converged() {
                converged_after = Some(round);
                break;
            }
            mesh.step(Duration::from_millis(100));
        }
        prop_assert!(
            converged_after.is_some(),
            "replicas did not converge within 150 gossip rounds under 30% loss"
        );
        // And convergence is to the *correct* live set, not just any agreement: every
        // sensor the interleaving left deployed is visible everywhere, tombstoned ones
        // are not.
        for (node_idx, flags) in deployed.iter().enumerate() {
            for (sensor_idx, live) in flags.iter().enumerate() {
                let name = format!("prop-sensor-{sensor_idx}");
                let hosted = mesh
                    .node(ids[0])
                    .unwrap()
                    .replica_snapshot()
                    .iter()
                    .any(|r| !r.deleted && r.node == ids[node_idx] && r.sensor == name);
                prop_assert_eq!(
                    hosted, *live,
                    "sensor {} on node {} expected live={}", name, node_idx, live
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------------------
// Distributed tracing + mesh health plane
// ---------------------------------------------------------------------------------------

/// Like [`sharded_mesh`] but every container runs with structured tracing on and a
/// 1 µs slow-query threshold, so federated queries produce spans and hop breakdowns.
fn traced_sharded_mesh(nodes: usize) -> (Mesh, Vec<gsn::types::NodeId>) {
    let mut mesh = Mesh::new();
    let ids: Vec<_> = (0..nodes)
        .map(|i| {
            let config = gsn::ContainerConfig::named(
                gsn::types::NodeId::new(i as u64 + 1),
                &format!("traced-{i}"),
            )
            .with_tracing(true)
            .with_slow_query_threshold(1);
            mesh.add_node_with_config(config).unwrap()
        })
        .collect();
    for id in &ids {
        mesh.node_mut(*id)
            .unwrap()
            .deploy(temperature_producer("mesh-temp", "mesh", 100))
            .unwrap();
    }
    (mesh, ids)
}

#[test]
fn traced_federated_query_assembles_one_tree_spanning_all_containers() {
    let (mut mesh, ids) = traced_sharded_mesh(4);
    mesh.run_for(Duration::from_secs(2), Duration::from_millis(100));
    assert!(mesh.replicas_converged(), "gossip did not converge");

    mesh.federated_query(
        ids[0],
        "select count(*) as n, avg(temperature) as t from mesh_temp",
        Duration::from_millis(100),
        100,
    )
    .unwrap();

    // The coordinator fires a trace collection at every scattered-to host as soon as
    // the gather completes; step until the last peer's span slice arrives.
    for _ in 0..200 {
        if mesh.node(ids[0]).unwrap().pending_trace_collects() == 0 {
            break;
        }
        mesh.step(Duration::from_millis(50));
    }
    assert_eq!(mesh.node(ids[0]).unwrap().pending_trace_collects(), 0);

    let traces = mesh.node(ids[0]).unwrap().assembled_traces();
    assert_eq!(traces.len(), 1, "expected exactly one assembled trace");
    let trace = &traces[0];
    assert!(!trace.incomplete, "assembled trace has broken parent links");
    let expected: Vec<u64> = ids.iter().map(|n| n.as_u64()).collect();
    assert_eq!(
        trace.nodes, expected,
        "the trace tree must carry spans from every participating container"
    );
    // One root (the coordinator's federated.query span), every other span reachable.
    let roots = trace.spans.iter().filter(|s| s.id == trace.root).count();
    assert_eq!(roots, 1);
    assert!(trace
        .spans
        .iter()
        .any(|s| s.name == "federated.serve" && s.node != ids[0].as_u64()));

    // Satellite: the same query landed in the coordinator's slow-query log with a
    // per-hop breakdown for each of the three remote participants.
    let slow = mesh.node(ids[0]).unwrap().slow_queries();
    let entry = slow
        .iter()
        .find(|q| q.explain.contains("scatter-gather"))
        .expect("federated query missing from the slow-query log");
    assert_eq!(entry.hops.len(), 3);
    for hop in &entry.hops {
        assert!(expected.contains(&hop.peer));
        assert!(hop.rtt_millis > 0, "hop to {} recorded no RTT", hop.peer);
    }
}

#[test]
fn wal_fault_on_one_node_is_observed_degraded_from_another() {
    use gsn::telemetry::HealthState;

    let (mut mesh, ids) = sharded_mesh(4);
    mesh.run_for(Duration::from_secs(2), Duration::from_millis(100));
    assert!(mesh.replicas_converged(), "gossip did not converge");

    // Every member's summary reaches every node via gossip piggybacking.
    for id in &ids {
        let view = mesh.node(*id).unwrap().mesh_health();
        assert_eq!(
            view.len(),
            ids.len(),
            "node {id} sees only {} of {} health summaries",
            view.len(),
            ids.len()
        );
    }

    // Drive node 0's storage subsystem over its WAL-sync budget (50 ms p99 budget,
    // 10× unhealthy factor) with synthetic 500 ms fsync observations, then let the
    // fault gossip out.
    mesh.node(ids[0])
        .unwrap()
        .inject_wal_sync_latency(500_000, 16);
    mesh.run_for(Duration::from_secs(2), Duration::from_millis(100));

    // Observed from a *different* node: the replicated health view grades node 0's
    // storage Degraded or worse, while an unfaulted member stays Healthy.
    let view = mesh.node(ids[2]).unwrap().mesh_health();
    let faulted = view
        .iter()
        .find(|s| s.node == ids[0].as_u64())
        .expect("node 0's health summary missing from node 2's view");
    let storage = faulted
        .state_of("storage")
        .expect("no storage subsystem grade");
    assert!(
        storage >= HealthState::Degraded,
        "injected WAL fault not reflected: storage graded {storage:?}"
    );
    let clean = view
        .iter()
        .find(|s| s.node == ids[1].as_u64())
        .expect("node 1's health summary missing from node 2's view");
    assert_eq!(clean.state_of("storage"), Some(HealthState::Healthy));

    // The faulted node's own status line agrees with what the mesh sees.
    let status = mesh.node(ids[0]).unwrap().status();
    assert!(status.health.worst() >= HealthState::Degraded);
    assert!(status.render().contains("health storage:"));
}

/// Measures the simulated time a remote streaming query takes over a fixed row set.
fn remote_query_millis(
    fed: &mut Federation,
    client: gsn::types::NodeId,
    server: gsn::types::NodeId,
    prefetch: bool,
) -> i64 {
    let sql = "select pk, temperature from room_a where pk <= 40";
    let request = if prefetch {
        fed.node_mut(client)
            .unwrap()
            .remote_query_prefetch(server, sql, 4)
            .unwrap()
    } else {
        fed.node_mut(client)
            .unwrap()
            .remote_query(server, sql, 4)
            .unwrap()
    };
    let started = fed.now();
    for _ in 0..2000 {
        if let Some(result) = fed
            .node_mut(client)
            .unwrap()
            .take_remote_query_result(request)
        {
            let result = result.unwrap();
            assert_eq!(result.relation.row_count(), 40);
            return fed.now().abs_diff(started).as_millis();
        }
        fed.step(Duration::from_millis(5));
    }
    panic!("remote query never completed");
}

#[test]
fn prefetch_pipelining_saves_at_least_one_rtt_per_query() {
    let mut fed = Federation::new();
    let server = fed.add_node("server").unwrap();
    let client = fed.add_node("client").unwrap();
    // A high-latency WAN-ish link: 25 ms each way, no loss — the RTT dominates, which
    // is exactly when speculative batch push should pay.
    fed.set_link(server, client, LinkSpec::wireless(25, 0.0));
    fed.node_mut(server)
        .unwrap()
        .deploy(temperature_producer("room-a", "a", 100))
        .unwrap();
    fed.run_for(Duration::from_secs(5), Duration::from_millis(100));

    let plain_ms = remote_query_millis(&mut fed, client, server, false);
    let prefetch_ms = remote_query_millis(&mut fed, client, server, true);
    // 40 rows at 4 per batch is ten batches: the stop-and-wait client pays ~an RTT per
    // batch, while the prefetch window keeps batches in flight.  Demanding a full RTT
    // (50 ms) of saving is the acceptance bar; in practice it saves several.
    assert!(
        plain_ms - prefetch_ms >= 50,
        "prefetch saved only {} ms over {} ms plain (RTT is 50 ms)",
        plain_ms - prefetch_ms,
        plain_ms
    );
}
