//! Property-based tests for the SQL engine: invariants that must hold for every randomly
//! generated relation and predicate parameterisation.

use gsn::sql::{ColumnInfo, MemoryCatalog, Relation, SqlEngine};
use gsn::types::{DataType, Value};
use proptest::prelude::*;

/// A randomly generated readings table with integers, doubles, strings and NULLs.
fn arb_rows() -> impl Strategy<Value = Vec<(i64, f64, String, bool)>> {
    prop::collection::vec(
        (
            -1000i64..1000,
            -100.0f64..100.0,
            "[a-z]{1,6}",
            prop::bool::ANY,
        ),
        0..60,
    )
}

fn build_catalog(rows: &[(i64, f64, String, bool)]) -> MemoryCatalog {
    let columns = vec![
        ColumnInfo::new(None, "id", Some(DataType::Integer)),
        ColumnInfo::new(None, "reading", Some(DataType::Double)),
        ColumnInfo::new(None, "room", Some(DataType::Varchar)),
        ColumnInfo::new(None, "flagged", Some(DataType::Boolean)),
    ];
    let data: Vec<Vec<Value>> = rows
        .iter()
        .map(|(id, reading, room, flagged)| {
            vec![
                Value::Integer(*id),
                // One in eight readings is NULL to exercise three-valued logic.
                if id % 8 == 0 {
                    Value::Null
                } else {
                    Value::Double(*reading)
                },
                Value::varchar(room.clone()),
                Value::Boolean(*flagged),
            ]
        })
        .collect();
    let mut catalog = MemoryCatalog::new();
    catalog.register("readings", Relation::with_rows(columns, data).unwrap());
    catalog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn count_star_equals_row_count(rows in arb_rows()) {
        let catalog = build_catalog(&rows);
        let mut engine = SqlEngine::new();
        let n = engine.execute_scalar("select count(*) from readings", &catalog).unwrap();
        prop_assert_eq!(n, Value::Integer(rows.len() as i64));
    }

    #[test]
    fn filters_return_subsets_and_complement_partitions(rows in arb_rows(), threshold in -1000i64..1000) {
        let catalog = build_catalog(&rows);
        let mut engine = SqlEngine::new();
        let total = rows.len() as i64;
        let matching = engine
            .execute_scalar(&format!("select count(*) from readings where id > {threshold}"), &catalog)
            .unwrap()
            .as_integer()
            .unwrap();
        let complement = engine
            .execute_scalar(&format!("select count(*) from readings where not (id > {threshold})"), &catalog)
            .unwrap()
            .as_integer()
            .unwrap();
        prop_assert!(matching >= 0 && matching <= total);
        // `id` is never NULL, so the predicate and its negation partition the table.
        prop_assert_eq!(matching + complement, total);
    }

    #[test]
    fn limit_caps_the_result_size(rows in arb_rows(), limit in 0u64..100) {
        let catalog = build_catalog(&rows);
        let mut engine = SqlEngine::new();
        let rel = engine
            .execute(&format!("select id from readings limit {limit}"), &catalog)
            .unwrap();
        prop_assert_eq!(rel.row_count() as u64, limit.min(rows.len() as u64));
    }

    #[test]
    fn order_by_produces_sorted_output(rows in arb_rows()) {
        let catalog = build_catalog(&rows);
        let mut engine = SqlEngine::new();
        let rel = engine.execute("select id from readings order by id", &catalog).unwrap();
        let ids: Vec<i64> = rel.rows().iter().map(|r| r[0].as_integer().unwrap()).collect();
        prop_assert!(ids.windows(2).all(|w| w[0] <= w[1]));
        let rel = engine.execute("select id from readings order by id desc", &catalog).unwrap();
        let ids: Vec<i64> = rel.rows().iter().map(|r| r[0].as_integer().unwrap()).collect();
        prop_assert!(ids.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn aggregates_are_consistent_with_each_other(rows in arb_rows()) {
        let catalog = build_catalog(&rows);
        let mut engine = SqlEngine::new();
        let rel = engine
            .execute(
                "select count(reading), sum(reading), avg(reading), min(reading), max(reading) from readings",
                &catalog,
            )
            .unwrap();
        let row = &rel.rows()[0];
        let count = row[0].as_integer().unwrap();
        if count == 0 {
            prop_assert!(row[1].is_null() && row[2].is_null() && row[3].is_null() && row[4].is_null());
        } else {
            let sum = row[1].as_double().unwrap();
            let avg = row[2].as_double().unwrap();
            let min = row[3].as_double().unwrap();
            let max = row[4].as_double().unwrap();
            prop_assert!((sum / count as f64 - avg).abs() < 1e-6);
            prop_assert!(min <= avg + 1e-9 && avg <= max + 1e-9);
        }
    }

    #[test]
    fn union_all_counts_add_up(rows in arb_rows()) {
        let catalog = build_catalog(&rows);
        let mut engine = SqlEngine::new();
        let doubled = engine
            .execute("select id from readings union all select id from readings", &catalog)
            .unwrap();
        prop_assert_eq!(doubled.row_count(), rows.len() * 2);
        let distinct_union = engine
            .execute("select id from readings union select id from readings", &catalog)
            .unwrap();
        let distinct = engine
            .execute("select distinct id from readings", &catalog)
            .unwrap();
        prop_assert_eq!(distinct_union.row_count(), distinct.row_count());
    }

    #[test]
    fn group_by_partitions_the_rows(rows in arb_rows()) {
        let catalog = build_catalog(&rows);
        let mut engine = SqlEngine::new();
        let grouped = engine
            .execute("select room, count(*) as n from readings group by room", &catalog)
            .unwrap();
        let total: i64 = grouped.rows().iter().map(|r| r[1].as_integer().unwrap()).sum();
        prop_assert_eq!(total, rows.len() as i64);
        // No group is empty.
        prop_assert!(grouped.rows().iter().all(|r| r[1].as_integer().unwrap() >= 1));
    }

    #[test]
    fn predicate_pushdown_does_not_change_join_results(rows in arb_rows(), threshold in -1000i64..1000) {
        let catalog = build_catalog(&rows);
        let sql = format!(
            "select a.id from readings a join readings b on a.id = b.id \
             where a.id > {threshold} and b.flagged = true order by a.id"
        );
        let mut optimised = SqlEngine::new();
        let mut unoptimised = SqlEngine::with_optimizer(gsn::sql::OptimizerConfig {
            constant_folding: false,
            predicate_pushdown: false,
        });
        let a = optimised.execute(&sql, &catalog).unwrap();
        let b = unoptimised.execute(&sql, &catalog).unwrap();
        prop_assert_eq!(a.rows(), b.rows());
    }

    /// Cursor-executor vs materialised-executor parity on randomly generated plans:
    /// pulling a plan in arbitrary-size batches must yield exactly the rows (and, where
    /// the plan is ordered, exactly the order) of a one-shot materialised execution.
    #[test]
    fn cursor_batches_match_materialised_execution(
        rows in arb_rows(),
        shape in 0usize..6,
        filter in 0usize..4,
        order in 0usize..2,
        limit in prop::option::of(0u64..80),
        offset in 0u64..10,
        batch in 1usize..9,
    ) {
        // Plan shapes pair a projection with compatible ORDER BY choices so every
        // generated query is valid.
        let (projection, orders): (&str, [&str; 2]) = match shape {
            0 => ("*", ["", " order by id"]),
            1 => ("id, room", ["", " order by room desc, id"]),
            2 => ("id, reading * 2 as r2", ["", " order by r2, id"]),
            3 => ("distinct room", ["", " order by room"]),
            4 => ("room, count(*) as n", ["", " order by room"]),
            _ => ("id", ["", " order by id desc"]),
        };
        let filters = ["", " where id > 0", " where flagged = true", " where reading is not null"];
        let mut sql = format!("select {projection} from readings{}", filters[filter]);
        if shape == 4 {
            sql.push_str(" group by room");
        }
        if shape == 5 {
            // A self-join: the probe side streams while the build side is buffered.
            sql = format!(
                "select a.id from readings a join readings b on a.id = b.id{}",
                filters[filter].replace("id", "a.id").replace("flagged", "a.flagged").replace("reading ", "a.reading ")
            );
            sql.push_str(["", " order by a.id desc"][order]);
        } else {
            sql.push_str(orders[order]);
        }
        if let Some(limit) = limit {
            sql.push_str(&format!(" limit {limit}"));
            if offset > 0 {
                sql.push_str(&format!(" offset {offset}"));
            }
        }

        let catalog = build_catalog(&rows);
        let mut engine = SqlEngine::new();
        let reference = engine.execute(&sql, &catalog).unwrap();
        let prepared = engine.prepare(&sql).unwrap();
        let mut source = prepared.open(&catalog).unwrap();
        let mut pulled: Vec<Vec<gsn::types::Value>> = Vec::new();
        loop {
            let chunk = gsn::sql::RowSource::next_batch(&mut source, batch).unwrap();
            if chunk.is_empty() {
                break;
            }
            pulled.extend(chunk);
        }
        prop_assert_eq!(pulled.as_slice(), reference.rows());
        // The scan counter never exceeds the base rows available to the plan.
        let base_rows = rows.len() as u64 * if shape == 5 { 2 } else { 1 };
        prop_assert!(source.rows_scanned() <= base_rows);
        // And with a LIMIT and no ordering/aggregation, the scan early-exits.
        if limit == Some(0) {
            prop_assert_eq!(source.rows_scanned(), 0);
        }
    }

    #[test]
    fn prepared_and_adhoc_execution_agree(rows in arb_rows()) {
        let catalog = build_catalog(&rows);
        let mut engine = SqlEngine::new();
        let sql = "select room, avg(reading) from readings group by room order by room";
        let prepared = engine.prepare(sql).unwrap();
        let via_prepared = engine.execute_prepared(&prepared, &catalog).unwrap();
        let via_adhoc = engine.execute(sql, &catalog).unwrap();
        prop_assert_eq!(via_prepared.rows(), via_adhoc.rows());
    }
}

// ---------------------------------------------------------------------------------------
// Index-path vs full-scan parity over real storage backends
// ---------------------------------------------------------------------------------------

use gsn::storage::{
    CatalogView, LiveCatalog, Retention, StorageManager, StorageOptions, WindowSpec,
};
use gsn::types::{Duration, StreamElement, StreamSchema, Timestamp};
use std::sync::Arc;

/// Which storage backend hosts the generated table: the index pushdown path must be
/// invisible on all of them, including across segment boundaries (tiny segments),
/// retention compaction, and window spill.
#[derive(Debug, Clone, Copy)]
enum BackendCase {
    Memory,
    Durable,
    Spilled,
}

fn arb_backend() -> impl Strategy<Value = BackendCase> {
    prop_oneof![
        Just(BackendCase::Memory),
        Just(BackendCase::Durable),
        Just(BackendCase::Spilled),
    ]
}

fn parity_temp_dir(case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gsn-sqlprop-{}-{:?}-{case}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: for random (predicate × projection × limit × window)
    /// queries over random ingest histories on every backend, the optimizer's
    /// index-bounded scan path returns exactly what the unoptimised full-scan path
    /// returns — same rows, same order.
    #[test]
    fn index_path_matches_full_scan_on_real_storage(
        backend in arb_backend(),
        rows in prop::collection::vec((0i64..100, 1i64..40), 30..180),
        prune_to in prop::option::of(20usize..120),
        predicate in 0usize..8,
        projection in 0usize..4,
        limit in prop::option::of(0u64..60),
        window in prop_oneof![
            Just(None),
            (5usize..80).prop_map(|n| Some(WindowSpec::Count(n))),
            (50i64..2_000).prop_map(|ms| Some(WindowSpec::Time(Duration::from_millis(ms)))),
        ],
        bound_a in 0i64..200,
        bound_b in 0i64..200,
        case_tag in 0u64..u64::MAX,
    ) {
        let schema = Arc::new(
            StreamSchema::from_pairs(&[("v", DataType::Integer), ("tag", DataType::Varchar)]).unwrap(),
        );
        let dir = parity_temp_dir(case_tag);
        let storage = match backend {
            BackendCase::Memory => StorageManager::new(),
            BackendCase::Durable => {
                let mut options = StorageOptions::at(&dir);
                // Tiny segments and a tiny pool force many segment boundaries and
                // real page eviction even at proptest row counts.
                options.persistent.segment_pages = 2;
                options.persistent.pool_pages = 4;
                StorageManager::with_options(options)
            }
            BackendCase::Spilled => {
                StorageManager::with_options(StorageOptions::at(&dir).with_window_spill(1_500))
            }
        };
        let retention = match prune_to {
            Some(n) => Retention::Elements(n),
            None => Retention::Unbounded,
        };
        match backend {
            BackendCase::Durable => storage.create_table_durable("t", Arc::clone(&schema), retention).unwrap(),
            _ => storage.create_table("t", Arc::clone(&schema), retention).unwrap(),
        };

        let mut now = Timestamp(0);
        for (v, dt) in &rows {
            now = Timestamp(now.as_millis() + dt);
            let element = StreamElement::new(
                Arc::clone(&schema),
                vec![Value::Integer(*v), Value::varchar(format!("g{}", v % 5))],
                now,
            )
            .unwrap();
            storage.insert("t", element, now).unwrap();
        }
        // Retention pruning (head-segment deletion / compaction on the durable
        // backend, cold-prefix truncation on the spilled one) between ingest and
        // query: the index must track what storage reclaimed.
        storage.prune_all(now);

        let max_ts = now.as_millis();
        let predicates = [
            String::new(),
            format!(" where pk >= {bound_a}"),
            format!(" where pk = {bound_a}"),
            format!(" where pk >= {} and pk <= {}", bound_a.min(bound_b), bound_a.max(bound_b)),
            format!(" where timed >= {}", max_ts - bound_a),
            format!(" where timed >= {} and timed <= {}", max_ts - bound_a.max(bound_b), max_ts - bound_a.min(bound_b)),
            " where v > 40".to_owned(),
            format!(" where pk >= {bound_a} and v % 2 = 0"),
        ];
        let projections = ["*", "v", "pk, v", "timed, v, tag"];
        let mut sql = format!("select {} from w{}", projections[projection], predicates[predicate]);
        if let Some(limit) = limit {
            sql.push_str(&format!(" limit {limit}"));
        }

        let views = [CatalogView::new("w", "t", window.unwrap_or(WindowSpec::Count(usize::MAX)))];
        let catalog = LiveCatalog::new(&storage, &views, now);
        let mut indexed = SqlEngine::new();
        let mut full_scan = SqlEngine::with_optimizer(gsn::sql::OptimizerConfig {
            constant_folding: true,
            predicate_pushdown: false,
        });
        let via_index = indexed.execute(&sql, &catalog).unwrap();
        let reference = full_scan.execute(&sql, &catalog).unwrap();
        prop_assert_eq!(
            via_index.rows(),
            reference.rows(),
            "index path diverged from full scan for `{}` on {:?}",
            sql,
            backend
        );
        prop_assert_eq!(via_index.columns(), reference.columns());

        drop(storage);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
