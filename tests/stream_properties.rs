//! Property-based tests for the stream-processing substrate: window selection, storage
//! retention, rate bounding and descriptor round-tripping.

use std::sync::Arc;

use gsn::storage::{Retention, StorageManager, StreamTable, WindowSpec};
use gsn::types::{DataType, Duration, StreamElement, StreamSchema, Timestamp, Value};
use gsn::xml::{AddressSpec, InputStreamSpec, StreamSourceSpec, VirtualSensorDescriptor};
use proptest::prelude::*;

fn schema() -> Arc<StreamSchema> {
    Arc::new(StreamSchema::from_pairs(&[("v", DataType::Integer)]).unwrap())
}

fn elements(timestamps: &[i64]) -> Vec<StreamElement> {
    let schema = schema();
    timestamps
        .iter()
        .enumerate()
        .map(|(i, ts)| {
            StreamElement::new(
                schema.clone(),
                vec![Value::Integer(i as i64)],
                Timestamp(*ts),
            )
            .unwrap()
            .with_sequence(i as u64 + 1)
        })
        .collect()
}

/// Sorted, strictly increasing arrival timestamps.
fn arb_timestamps() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(1i64..5_000, 0..120).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn count_windows_select_a_bounded_suffix(ts in arb_timestamps(), n in 1usize..50) {
        let els = elements(&ts);
        let window = WindowSpec::Count(n);
        let selected = window.select(&els, Timestamp(10_000));
        prop_assert!(selected.len() <= n);
        prop_assert_eq!(selected.len(), n.min(els.len()));
        // The selection is exactly the suffix: ordering and identity preserved.
        let expected: Vec<u64> = els.iter().rev().take(n).rev().map(StreamElement::sequence).collect();
        let got: Vec<u64> = selected.iter().map(StreamElement::sequence).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn time_windows_select_exactly_the_in_horizon_elements(ts in arb_timestamps(), span in 1i64..2_000, now in 0i64..6_000) {
        let els = elements(&ts);
        let window = WindowSpec::Time(Duration::from_millis(span));
        let selected = window.select(&els, Timestamp(now));
        let cutoff = now - span;
        for e in selected {
            prop_assert!(e.timestamp().as_millis() >= cutoff);
        }
        let expected = els.iter().filter(|e| e.timestamp().as_millis() >= cutoff).count();
        prop_assert_eq!(selected.len(), expected);
    }

    #[test]
    fn element_retention_never_exceeds_the_bound(ts in arb_timestamps(), keep in 1usize..40) {
        let mut table = StreamTable::new("t", schema(), Retention::Elements(keep));
        for (i, t) in ts.iter().enumerate() {
            table
                .insert_values(vec![Value::Integer(i as i64)], Timestamp(*t))
                .unwrap();
            prop_assert!(table.len() <= keep);
        }
        prop_assert_eq!(table.len(), keep.min(ts.len()));
        // The retained elements are the most recent ones, still in order.
        let retained: Vec<i64> = table.all().iter().map(|e| e.value("V").unwrap().as_integer().unwrap()).collect();
        let start = ts.len().saturating_sub(keep) as i64;
        let expected: Vec<i64> = (start..ts.len() as i64).collect();
        prop_assert_eq!(retained, expected);
    }

    #[test]
    fn horizon_retention_keeps_everything_a_time_window_needs(ts in arb_timestamps(), span in 1i64..2_000) {
        let mut table = StreamTable::new(
            "t",
            schema(),
            Retention::Horizon(Duration::from_millis(span)),
        );
        let mut reference: Vec<i64> = Vec::new();
        for (i, t) in ts.iter().enumerate() {
            table
                .insert_values(vec![Value::Integer(i as i64)], Timestamp(*t))
                .unwrap();
            reference.push(*t);
            let now = Timestamp(*t);
            // Every element a time window of `span` would select is still in the table.
            let needed = reference
                .iter()
                .filter(|x| **x >= t - span)
                .count();
            let view = table.window_view(WindowSpec::Time(Duration::from_millis(span)), now);
            prop_assert_eq!(view.len(), needed);
        }
    }

    #[test]
    fn storage_manager_statistics_match_inserts(ts in arb_timestamps()) {
        let storage = StorageManager::new();
        storage.create_table("t", schema(), Retention::Unbounded).unwrap();
        for (i, t) in ts.iter().enumerate() {
            let e = StreamElement::new(schema(), vec![Value::Integer(i as i64)], Timestamp(*t)).unwrap();
            storage.insert("t", e, Timestamp(*t)).unwrap();
        }
        let stats = storage.stats();
        prop_assert_eq!(stats.retained_elements, ts.len());
        prop_assert_eq!(stats.totals.inserted, ts.len() as u64);
        prop_assert_eq!(stats.totals.out_of_order, 0);
    }

    #[test]
    fn rate_limiter_never_admits_faster_than_the_bound(ts in arb_timestamps(), rate in 1u32..100) {
        let mut limiter = gsn::container::RateLimiter::from_rate(Some(rate));
        let spacing = limiter.min_spacing().as_millis();
        let mut admitted: Vec<i64> = Vec::new();
        for t in &ts {
            if limiter.admit(Timestamp(*t)) {
                admitted.push(*t);
            }
        }
        prop_assert!(admitted.windows(2).all(|w| w[1] - w[0] >= spacing));
    }

    #[test]
    fn window_spec_round_trips_through_its_descriptor_spelling(n in 1usize..10_000, secs in 1i64..7_200) {
        for window in [WindowSpec::Count(n), WindowSpec::Time(Duration::from_secs(secs))] {
            let spec = window.to_spec_string();
            prop_assert_eq!(WindowSpec::parse(&spec).unwrap(), window);
        }
    }

    #[test]
    fn descriptors_round_trip_through_xml(
        sensor_index in 0u32..1_000,
        pool in 1usize..16,
        window_count in 1usize..500,
        sampling in 1u32..=10,
        rate in prop::option::of(1u32..200),
        permanent in prop::bool::ANY,
        fields in prop::collection::vec(("[a-z][a-z0-9_]{0,8}", 0usize..6), 1..5),
    ) {
        // Field names must be unique for the schema to build.
        let mut seen = std::collections::HashSet::new();
        let fields: Vec<(String, usize)> = fields
            .into_iter()
            .filter(|(name, _)| seen.insert(name.clone()))
            .collect();
        prop_assume!(!fields.is_empty());

        let types = [
            DataType::Integer,
            DataType::Double,
            DataType::Varchar,
            DataType::Boolean,
            DataType::Binary,
            DataType::Timestamp,
        ];
        let mut builder = VirtualSensorDescriptor::builder(&format!("sensor-{sensor_index}"))
            .unwrap()
            .pool_size(pool)
            .permanent_storage(permanent)
            .metadata("type", "generated");
        for (name, type_index) in &fields {
            builder = builder.output_field(name, types[*type_index % types.len()]).unwrap();
        }
        let mut stream = InputStreamSpec::new("main", "select * from src").with_source(
            StreamSourceSpec::new(
                "src",
                AddressSpec::new("mote").with_predicate("interval", "100"),
                "select * from WRAPPER",
            )
            .with_window(WindowSpec::Count(window_count))
            .with_sampling_rate(sampling as f64 / 10.0),
        );
        if let Some(r) = rate {
            stream = stream.with_rate_limit(r);
        }
        let descriptor = builder.input_stream(stream).build().unwrap();

        let xml = descriptor.to_xml();
        let reparsed = VirtualSensorDescriptor::parse(&xml).unwrap();
        prop_assert_eq!(reparsed, descriptor);
    }
}
