//! Streaming-query integration tests: the pull-based cursor path from storage pages to
//! the container API.
//!
//! The headline property: a `LIMIT k` query over a large disk-backed
//! `permanent-storage` table must complete without reading the full heap — the cursor
//! executor stops pulling after `k` rows, so the buffer pool touches a constant number
//! of pages instead of the whole table.

use std::sync::Arc;

use gsn::container::cursor::QueryCursor;
use gsn::storage::Retention;
use gsn::types::{DataType, SimulatedClock, StreamElement, StreamSchema, Timestamp, Value};
use gsn::{ContainerConfig, GsnContainer};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gsn-streaming-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn schema() -> Arc<StreamSchema> {
    Arc::new(
        StreamSchema::from_pairs(&[("v", DataType::Integer), ("tag", DataType::Varchar)]).unwrap(),
    )
}

/// A container with a disk-backed table of `rows` elements, bypassing the step loop so
/// the test stays fast at tens of thousands of rows.
fn container_with_history(dir: &std::path::Path, rows: i64) -> GsnContainer {
    let clock = SimulatedClock::new();
    clock.advance(gsn::types::Duration::from_secs(1));
    let config = ContainerConfig {
        storage_pool_pages: 16,
        ..ContainerConfig::default().with_data_dir(dir)
    };
    let container = GsnContainer::new(config, Arc::new(clock));
    let schema = schema();
    container
        .storage()
        .create_table_durable("history", Arc::clone(&schema), Retention::Unbounded)
        .unwrap();
    for i in 0..rows {
        let element = StreamElement::new(
            Arc::clone(&schema),
            vec![Value::Integer(i), Value::varchar(format!("t{}", i % 7))],
            Timestamp(i),
        )
        .unwrap();
        container
            .storage()
            .insert("history", element, Timestamp(i))
            .unwrap();
    }
    container
}

const ROWS: i64 = 40_000;

#[test]
fn limit_query_touches_a_bounded_number_of_pages() {
    let dir = temp_dir("bounded");
    let container = container_with_history(&dir, ROWS);
    assert!(container
        .storage()
        .table("history")
        .unwrap()
        .read()
        .is_persistent());

    let mut cursor: QueryCursor = container
        .query_cursor("select v from history limit 10")
        .unwrap();
    let batch = cursor.next_batch(64).unwrap();
    assert_eq!(batch.row_count(), 10);
    assert!(cursor.is_done());
    // Early exit at every layer: ~10 rows pulled from the scan, and only the first
    // page(s) of a 40k-row heap read through the buffer pool.
    assert_eq!(cursor.rows_scanned(), 10);
    assert!(
        cursor.pages_read() <= 4,
        "LIMIT 10 read {} pages of a 40k-row heap",
        cursor.pages_read()
    );
}

#[test]
fn indexed_predicates_touch_a_bounded_number_of_pages() {
    let dir = temp_dir("indexed");
    let container = container_with_history(&dir, ROWS);

    // Point lookup by PK: the pushed-down sequence bound seeks straight to the row's
    // page instead of scanning 40k rows.
    let mut point = container
        .query_cursor("select v from history where pk = 39123")
        .unwrap();
    let batch = point.next_batch(8).unwrap();
    assert_eq!(batch.row_count(), 1);
    assert_eq!(batch.rows()[0][0], Value::Integer(39122));
    assert!(
        point.pages_read() <= 4,
        "point lookup read {} pages of a 40k-row heap",
        point.pages_read()
    );
    drop(point);

    // Time-range lookup: the per-segment page summaries skip every page outside the
    // bound; the executor's residual filter trims the page-granular superset.
    let mut ranged = container
        .query_cursor("select v from history where timed >= 39000 and timed <= 39010")
        .unwrap();
    let rel = ranged.collect().unwrap();
    assert_eq!(rel.row_count(), 11);
    assert_eq!(rel.rows()[0][0], Value::Integer(39000));
    assert!(
        ranged.pages_skipped() > 0,
        "the segment index should have skipped cold pages"
    );
    assert!(
        ranged.pages_read() <= 8,
        "time-range lookup read {} pages of a 40k-row heap",
        ranged.pages_read()
    );
    drop(ranged);

    // Dropped cursors fold the new counters into the engine statistics.
    let engine = container.status().engine;
    assert!(engine.pages_skipped > 0, "{engine:?}");
    assert!(engine.pushdown_applied >= 2, "{engine:?}");
}

#[test]
fn full_scan_streams_in_bounded_memory_and_matches_query() {
    let dir = temp_dir("parity");
    let container = container_with_history(&dir, ROWS);

    // count(*) must stream every page but never exceed the pool budget.
    let rel = container.query("select count(*) from history").unwrap();
    assert_eq!(rel.rows()[0][0], Value::Integer(ROWS));
    let stats = container.storage().stats();
    assert!(stats.pool.resident_pages <= stats.pool.capacity);

    // Cursor and materialised paths agree, including order, on filtered/ordered plans.
    for sql in [
        "select v from history where v % 1000 = 0",
        "select tag, count(*) as n from history group by tag order by tag",
        "select v from history order by v desc limit 25",
        "select pk, timed, v from history limit 5 offset 17",
    ] {
        let reference = container.query(sql).unwrap();
        let mut cursor = container.query_cursor(sql).unwrap();
        let mut rows = Vec::new();
        loop {
            let batch = cursor.next_batch(997).unwrap();
            if batch.is_empty() {
                break;
            }
            rows.extend(batch.rows().to_vec());
        }
        assert_eq!(rows, reference.rows(), "{sql}");
    }
}

#[test]
fn cursor_survives_concurrent_ingest_between_batches() {
    let dir = temp_dir("live");
    let container = container_with_history(&dir, 5_000);
    let mut cursor = container.query_cursor("select v from history").unwrap();
    let first = cursor.next_batch(100).unwrap();
    assert_eq!(first.row_count(), 100);

    // New rows arrive while the cursor is parked; the cursor's snapshot bound keeps the
    // result well-defined (rows present at open) and iteration completes cleanly.
    let schema = schema();
    for i in 0..500 {
        let element = StreamElement::new(
            Arc::clone(&schema),
            vec![Value::Integer(100_000 + i), Value::varchar("late")],
            Timestamp(100_000 + i),
        )
        .unwrap();
        container
            .storage()
            .insert("history", element, Timestamp(100_000 + i))
            .unwrap();
    }

    let rest = cursor.collect().unwrap();
    assert_eq!(first.row_count() + rest.row_count(), 5_000);
    assert_eq!(
        rest.rows().last().unwrap()[0],
        Value::Integer(4_999),
        "the cursor must not see rows appended after it opened"
    );
}
