//! Determinism of the sharded step loop: a multi-sensor workload must produce *identical*
//! per-sensor outputs, notifications and client-query activity whether the container runs
//! sequentially (`workers = 1`) or sharded across the worker pool (`workers = 4`).
//!
//! Only cross-sensor interleaving (and wall-clock time) may differ between the two
//! execution modes; everything observable per sensor — output rows, sequence numbers,
//! notification streams, registered-query evaluations — must match exactly.

use std::sync::Arc;

use gsn::container::ContainerConfig;
use gsn::storage::WindowSpec;
use gsn::types::{DataType, Duration, SimulatedClock, Value};
use gsn::xml::{AddressSpec, InputStreamSpec, StreamSourceSpec, VirtualSensorDescriptor};
use gsn::{GsnContainer, Notification, StepReport};

const SENSORS: usize = 12;
const STEPS: usize = 6;

fn mote_descriptor(name: &str, interval_ms: u32, seed: u32) -> VirtualSensorDescriptor {
    VirtualSensorDescriptor::builder(name)
        .unwrap()
        .output_field("avg_temp", DataType::Double)
        .unwrap()
        .permanent_storage(true)
        .input_stream(
            InputStreamSpec::new("main", "select * from src1").with_source(
                StreamSourceSpec::new(
                    "src1",
                    AddressSpec::new("mote")
                        .with_predicate("interval", &interval_ms.to_string())
                        .with_predicate("seed", &seed.to_string()),
                    "select avg(temperature) as avg_temp from WRAPPER",
                )
                .with_window(WindowSpec::Count(10)),
            ),
        )
        .build()
        .unwrap()
}

/// The deterministic counters of the container's metrics export: everything the
/// worker shards merge must come out identical whatever the worker count.
const PARITY_COUNTERS: &[&str] = &[
    "gsn_steps_total",
    "gsn_step_local_arrivals_total",
    "gsn_step_outputs_total",
    "gsn_step_query_evaluations_total",
    "gsn_step_errors_total",
    "gsn_query_incremental_total",
    "gsn_query_fallback_total",
    "gsn_query_registered_evaluated_total",
    "gsn_storage_rows_inserted_total",
    "gsn_sql_executions_total",
    "gsn_notify_local_delivered_total",
];

struct Run {
    /// One (counters-only) report per step — `processing_micros` zeroed, it is wall-clock.
    reports: Vec<StepReport>,
    /// Per sensor: the full output table contents as (pk, avg_temp) rows.
    tables: Vec<Vec<(Value, Value)>>,
    /// Per sensor: the notified (sensor, AVG_TEMP) sequence, in delivery order.
    notifications: Vec<Vec<(String, Value)>>,
    /// The [`PARITY_COUNTERS`] values from the final metrics snapshot.
    counters: Vec<(&'static str, u64)>,
}

fn run_workload(workers: usize) -> Run {
    run_workload_at(workers, None)
}

/// Same workload, optionally with durable storage under `data_dir` — the sensors are
/// `permanent-storage`, so a data directory routes every output row through the sharded
/// buffer pool and the per-worker-shard WAL.
fn run_workload_at(workers: usize, data_dir: Option<std::path::PathBuf>) -> Run {
    let clock = SimulatedClock::new();
    let mut config = ContainerConfig::default().with_workers(workers);
    if let Some(dir) = data_dir {
        config = config.with_data_dir(dir);
    }
    let mut node = GsnContainer::new(config, Arc::new(clock.clone()));

    let names: Vec<String> = (0..SENSORS).map(|i| format!("mote-{i}")).collect();
    let mut receivers = Vec::new();
    for (i, name) in names.iter().enumerate() {
        // Varied intervals: sensors produce different element counts per step.
        node.deploy(mote_descriptor(name, 100 + 50 * (i as u32 % 4), i as u32))
            .unwrap();
        let (_, rx) = node.subscribe(name).unwrap();
        receivers.push(rx);
        // One registered query per sensor, over that sensor's own output only (queries
        // joining concurrent sensors are inherently order-dependent).
        node.register_query(
            &format!("client-{i}"),
            &format!("select avg(avg_temp) as a from {}", name.replace('-', "_")),
            WindowSpec::Count(20),
            None,
        )
        .unwrap();
    }

    let mut reports = Vec::new();
    for _ in 0..STEPS {
        clock.advance(Duration::from_secs(1));
        let mut report = node.step();
        report.processing_micros = 0;
        reports.push(report);
    }

    let tables = names
        .iter()
        .map(|name| {
            node.query(&format!(
                "select pk, avg_temp from {} ",
                name.replace('-', "_")
            ))
            .unwrap()
            .rows()
            .iter()
            .map(|row| (row[0].clone(), row[1].clone()))
            .collect()
        })
        .collect();
    let notifications = receivers
        .iter()
        .map(|rx| {
            rx.try_iter()
                .map(|n: Notification| (n.sensor.clone(), n.element.value("AVG_TEMP").unwrap()))
                .collect()
        })
        .collect();
    let snapshot = node.metrics_snapshot();
    let counters = PARITY_COUNTERS
        .iter()
        .map(|name| {
            let value = snapshot
                .get(name)
                .unwrap_or_else(|| panic!("counter {name} missing from the snapshot"))
                .as_counter()
                .unwrap();
            (*name, value)
        })
        .collect();
    Run {
        reports,
        tables,
        notifications,
        counters,
    }
}

#[test]
fn sharded_step_loop_matches_sequential_semantics() {
    let sequential = run_workload(1);
    let sharded = run_workload(4);

    // Per-step counters agree exactly (arrival, output, error, query-eval totals).
    assert_eq!(sequential.reports, sharded.reports);
    // Every sensor's stored output history is identical, including sequence numbers.
    for i in 0..SENSORS {
        assert_eq!(
            sequential.tables[i], sharded.tables[i],
            "output table diverged for sensor {i}"
        );
        assert_eq!(
            sequential.notifications[i], sharded.notifications[i],
            "notification stream diverged for sensor {i}"
        );
    }
    // The merged per-shard telemetry is identical too: sharding must not lose or
    // double-count a single metric increment.
    assert_eq!(sequential.counters, sharded.counters);
    assert!(
        sequential
            .counters
            .iter()
            .filter(|(name, _)| !name.contains("errors") && !name.contains("fallback"))
            .all(|(_, v)| *v > 0),
        "parity counters never moved: {:?}",
        sequential.counters
    );
    // Sanity: the workload actually produced data and evaluated registered queries.
    assert!(
        sequential
            .reports
            .iter()
            .map(|r| r.client_query_evaluations)
            .sum::<u64>()
            > 0
    );
    assert!(sequential.reports.iter().map(|r| r.outputs).sum::<u64>() > 100);
    assert!(sequential.tables.iter().all(|t| !t.is_empty()));
}

#[test]
fn worker_counts_do_not_change_aggregate_output() {
    // 1 vs 2 vs 8 workers (more workers than shards with data is fine).
    let base = run_workload(1);
    for workers in [2usize, 8] {
        let run = run_workload(workers);
        assert_eq!(base.reports, run.reports, "workers={workers}");
        assert_eq!(base.tables, run.tables, "workers={workers}");
    }
}

#[test]
fn durable_parity_under_sharded_pool_and_wal() {
    // The same parity property with persistence on: every output row now flows through
    // the region-sharded buffer pool and the per-worker-shard WAL (wal_shards ==
    // workers), so a worker count must change neither stored history nor any counter.
    let dir = |tag: &str| {
        let d =
            std::env::temp_dir().join(format!("gsn-parallel-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    };
    let sequential = run_workload_at(1, Some(dir("w1")));
    let sharded = run_workload_at(4, Some(dir("w4")));
    assert_eq!(sequential.reports, sharded.reports);
    assert_eq!(sequential.tables, sharded.tables);
    for i in 0..SENSORS {
        assert_eq!(
            sequential.notifications[i], sharded.notifications[i],
            "notification stream diverged for sensor {i}"
        );
    }
    assert_eq!(sequential.counters, sharded.counters);
    assert!(sequential.tables.iter().all(|t| !t.is_empty()));
}
