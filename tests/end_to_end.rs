//! End-to-end integration tests: XML deployment, the processing pipeline, SQL access,
//! subscriptions, client queries and dynamic reconfiguration on a single container.

use std::sync::Arc;

use gsn::container::ContainerConfig;
use gsn::types::{DataType, Duration, SimulatedClock, Value};
use gsn::xml::{AddressSpec, InputStreamSpec, StreamSourceSpec, VirtualSensorDescriptor};
use gsn::{GsnContainer, WindowSpec};

fn new_node() -> (GsnContainer, SimulatedClock) {
    let clock = SimulatedClock::new();
    let node = GsnContainer::new(ContainerConfig::default(), Arc::new(clock.clone()));
    (node, clock)
}

fn run(node: &mut GsnContainer, clock: &SimulatedClock, millis: i64, tick: i64) {
    let ticks = millis / tick;
    for _ in 0..ticks {
        clock.advance(Duration::from_millis(tick));
        node.step();
    }
}

#[test]
fn paper_figure1_descriptor_end_to_end() {
    let (mut node, clock) = new_node();
    // The paper's Figure 1 descriptor with a local mote standing in for the remote source.
    let name = node
        .deploy_xml(
            r#"<virtual-sensor name="room-bc143-temperature" priority="10">
                 <metadata key="type" val="temperature" />
                 <metadata key="location" val="bc143" />
                 <life-cycle pool-size="10" />
                 <output-structure>
                   <field name="TEMPERATURE" type="double"/>
                 </output-structure>
                 <storage permanent-storage="true" size="10s" />
                 <input-stream name="dummy" rate="100">
                   <stream-source alias="src1" sampling-rate="1"
                                  storage-size="1h" disconnect-buffer="10">
                     <address wrapper="mote">
                       <predicate key="interval" val="250" />
                     </address>
                     <query>select avg(temperature) as temperature from WRAPPER</query>
                   </stream-source>
                   <query>select * from src1</query>
                 </input-stream>
               </virtual-sensor>"#,
        )
        .unwrap();
    assert_eq!(name.as_str(), "room-bc143-temperature");

    let (_sub, notifications) = node.subscribe("room-bc143-temperature").unwrap();
    run(&mut node, &clock, 10_000, 250);

    // 40 mote readings -> 40 averaged outputs.
    let stats = node.sensor_stats("room-bc143-temperature").unwrap();
    assert_eq!(stats.arrivals, 40);
    assert_eq!(stats.outputs, 40);
    assert_eq!(stats.errors, 0);

    let rel = node
        .query("select count(*), avg(temperature) from room_bc143_temperature")
        .unwrap();
    assert_eq!(rel.rows()[0][0], Value::Integer(40));
    let avg = rel.rows()[0][1].as_double().unwrap();
    assert!((10.0..=40.0).contains(&avg), "implausible average {avg}");

    assert_eq!(notifications.try_iter().count(), 40);

    // The latest element is retrievable with the ORDER BY ... LIMIT idiom.
    let latest = node
        .query("select temperature from room_bc143_temperature order by timed desc limit 1")
        .unwrap();
    assert_eq!(latest.row_count(), 1);
}

#[test]
fn two_source_join_sensor() {
    let (mut node, clock) = new_node();
    // A virtual sensor joining a mote network and an RFID reader in one SQL statement —
    // the "new sensor network based on data produced by other (heterogeneous) sensor
    // networks" scenario of the demo.
    let descriptor = VirtualSensorDescriptor::builder("door-context")
        .unwrap()
        .output_field("tag", DataType::Varchar)
        .unwrap()
        .output_field("temperature", DataType::Double)
        .unwrap()
        .permanent_storage(true)
        .input_stream(
            InputStreamSpec::new(
                "main",
                "select rfid.tag, climate.temperature from rfid, climate",
            )
            .with_source(
                StreamSourceSpec::new(
                    "rfid",
                    AddressSpec::new("rfid")
                        .with_predicate("interval", "500")
                        .with_predicate("detection-probability", "1.0"),
                    "select tag from WRAPPER",
                )
                .with_window(WindowSpec::Count(1)),
            )
            .with_source(
                StreamSourceSpec::new(
                    "climate",
                    AddressSpec::new("mote").with_predicate("interval", "500"),
                    "select avg(temperature) as temperature from WRAPPER",
                )
                .with_window(WindowSpec::Count(4)),
            ),
        )
        .build()
        .unwrap();
    node.deploy(descriptor).unwrap();
    run(&mut node, &clock, 5_000, 250);

    let rel = node
        .query(
            "select count(*) from door_context where tag is not null and temperature is not null",
        )
        .unwrap();
    let joined = rel.rows()[0][0].as_integer().unwrap();
    assert!(joined > 0, "join produced no correlated rows");
}

#[test]
fn registered_client_queries_and_reconfiguration() {
    let (mut node, clock) = new_node();
    node.deploy_xml(
        r#"<virtual-sensor name="hall-light">
             <output-structure><field name="light" type="double"/></output-structure>
             <storage permanent-storage="true"/>
             <input-stream name="main">
               <stream-source alias="s" storage-size="10">
                 <address wrapper="mote"><predicate key="interval" val="200"/></address>
                 <query>select avg(light) as light from WRAPPER</query>
               </stream-source>
               <query>select * from s</query>
             </input-stream>
           </virtual-sensor>"#,
    )
    .unwrap();

    let q1 = node
        .register_query(
            "dashboard",
            "select avg(light) from hall_light",
            WindowSpec::Time(Duration::from_secs(5)),
            None,
        )
        .unwrap();
    node.register_query(
        "alarm",
        "select count(*) from hall_light where light > 100",
        WindowSpec::Count(50),
        Some(0.5),
    )
    .unwrap();

    let report_before = {
        let mut total = gsn::StepReport::default();
        for _ in 0..20 {
            clock.advance(Duration::from_millis(200));
            let r = node.step();
            total.outputs += r.outputs;
            total.client_query_evaluations += r.client_query_evaluations;
        }
        total
    };
    assert_eq!(report_before.outputs, 20);
    assert_eq!(report_before.client_query_evaluations, 40);

    // Remove one query; evaluations per output drop to one.
    node.deregister_query(q1).unwrap();
    clock.advance(Duration::from_millis(200));
    let r = node.step();
    assert_eq!(r.client_query_evaluations, r.outputs);

    // Undeploy while queries are still registered: ad-hoc queries now fail cleanly.
    node.undeploy("hall-light").unwrap();
    assert!(node.query("select * from hall_light").is_err());
    assert!(node.sensor_names().is_empty());

    // Redeploy with a different configuration and keep going.
    node.deploy_xml(
        r#"<virtual-sensor name="hall-light">
             <output-structure><field name="light" type="double"/></output-structure>
             <storage permanent-storage="true"/>
             <input-stream name="main">
               <stream-source alias="s" storage-size="20">
                 <address wrapper="mote"><predicate key="interval" val="400"/></address>
                 <query>select max(light) as light from WRAPPER</query>
               </stream-source>
               <query>select * from s</query>
             </input-stream>
           </virtual-sensor>"#,
    )
    .unwrap();
    run(&mut node, &clock, 4_000, 400);
    let rel = node.query("select count(*) from hall_light").unwrap();
    assert_eq!(rel.rows()[0][0], Value::Integer(10));
}

#[test]
fn push_wrapper_lets_applications_feed_data() {
    let (mut node, clock) = new_node();
    // Application-side handle for a named push channel, then a descriptor consuming it.
    let schema =
        Arc::new(gsn::types::StreamSchema::from_pairs(&[("reading", DataType::Double)]).unwrap());
    let push_factory = gsn::wrappers::PushWrapperFactory::new();
    // Register the application's factory instance (replacing the builtin one) so the
    // handle and the deployed wrapper share the channel.
    node.wrapper_registry().deregister("push").unwrap();
    let push_factory = Arc::new(push_factory);
    node.wrapper_registry()
        .register(push_factory.clone())
        .unwrap();
    let handle = push_factory.handle("building-feed", schema);

    node.deploy_xml(
        r#"<virtual-sensor name="external-feed">
             <output-structure><field name="reading" type="double"/></output-structure>
             <storage permanent-storage="true"/>
             <input-stream name="main">
               <stream-source alias="s" storage-size="1">
                 <address wrapper="push"><predicate key="channel" val="building-feed"/></address>
                 <query>select reading from WRAPPER</query>
               </stream-source>
               <query>select * from s</query>
             </input-stream>
           </virtual-sensor>"#,
    )
    .unwrap();

    for i in 0..25 {
        handle
            .push_values(vec![Value::Double(i as f64)], gsn::Timestamp(i * 10))
            .unwrap();
    }
    clock.advance(Duration::from_secs(1));
    node.step();

    let rel = node
        .query("select count(*), max(reading) from external_feed")
        .unwrap();
    assert_eq!(rel.rows()[0][0], Value::Integer(25));
    assert_eq!(rel.rows()[0][1], Value::Double(24.0));
}

#[test]
fn access_control_and_status_reporting() {
    let (mut node, clock) = new_node();
    node.deploy_xml(
        r#"<virtual-sensor name="secure-lab">
             <output-structure><field name="temperature" type="double"/></output-structure>
             <storage permanent-storage="true"/>
             <input-stream name="main">
               <stream-source alias="s" storage-size="5">
                 <address wrapper="mote"><predicate key="interval" val="100"/></address>
                 <query>select avg(temperature) as temperature from WRAPPER</query>
               </stream-source>
               <query>select * from s</query>
             </input-stream>
           </virtual-sensor>"#,
    )
    .unwrap();
    run(&mut node, &clock, 1_000, 100);

    use gsn::network::Principal;
    node.access_control()
        .restrict_sensor("secure_lab", vec![Principal::named("operator")]);
    assert!(node.query("select * from secure_lab").is_err());
    assert!(node
        .query_as(&Principal::named("operator"), "select * from secure_lab")
        .is_ok());

    let status = node.status();
    assert_eq!(status.sensors.len(), 1);
    assert!(status.storage.retained_elements > 0);
    let rendered = status.render();
    assert!(rendered.contains("secure-lab"));
    assert!(rendered.contains("virtual sensors (1)"));
}
