//! Property and integration tests for the persistent storage engine: codec round-trips,
//! buffer-pool invariants, and container-level restart recovery.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gsn::container::ContainerConfig;
use gsn::storage::{
    Page, PageIo, PersistentOptions, Retention, SharedBufferPool, StorageManager, StreamTable,
    WindowSpec,
};
use gsn::types::{
    codec, DataType, Duration, SimulatedClock, StreamElement, StreamSchema, Timestamp, Value,
};
use gsn::xml::{AddressSpec, InputStreamSpec, StreamSourceSpec, VirtualSensorDescriptor};
use gsn::{GsnContainer, GsnResult};
use proptest::prelude::*;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("gsn-persist-test-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

// ---------------------------------------------------------------------------------------
// Codec round-trips
// ---------------------------------------------------------------------------------------

/// An arbitrary value of every GSN type (index selects the variant).
fn arb_value() -> impl Strategy<Value = (u32, i64, f64, String, bool)> {
    (
        0u32..7,
        -1_000_000i64..1_000_000,
        -1e9f64..1e9,
        "[a-z0-9]{0,12}",
        prop::bool::ANY,
    )
}

fn materialize_value((variant, i, d, s, b): &(u32, i64, f64, String, bool)) -> Value {
    match variant {
        0 => Value::Null,
        1 => Value::Integer(*i),
        2 => Value::Double(*d),
        3 => Value::varchar(s.clone()),
        4 => Value::Boolean(*b),
        5 => Value::binary(s.clone().into_bytes()),
        _ => Value::Timestamp(Timestamp(*i)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn values_round_trip_through_the_codec(raw in prop::collection::vec(arb_value(), 0..20)) {
        let values: Vec<Value> = raw.iter().map(materialize_value).collect();
        let mut bytes = Vec::new();
        for value in &values {
            codec::encode_value(&mut bytes, value);
        }
        let mut cursor: &[u8] = &bytes;
        for value in &values {
            let decoded = codec::decode_value(&mut cursor).unwrap();
            prop_assert_eq!(&decoded, value);
        }
        prop_assert!(cursor.is_empty());
    }

    #[test]
    fn rows_round_trip_through_the_codec(
        ints in prop::collection::vec(-1_000i64..1_000, 1..8),
        ts in 0i64..1_000_000,
        seq in 1u64..1_000_000,
    ) {
        let pairs: Vec<(String, DataType)> = (0..ints.len())
            .map(|i| (format!("f{i}"), DataType::Integer))
            .collect();
        let borrowed: Vec<(&str, DataType)> =
            pairs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let schema = Arc::new(StreamSchema::from_pairs(&borrowed).unwrap());
        let element = StreamElement::new(
            Arc::clone(&schema),
            ints.iter().copied().map(Value::Integer).collect(),
            Timestamp(ts),
        )
        .unwrap()
        .with_sequence(seq);
        let bytes = codec::encode_row(&element);
        let mut cursor: &[u8] = &bytes;
        let decoded = codec::decode_row(&mut cursor, &schema).unwrap();
        prop_assert!(cursor.is_empty());
        prop_assert_eq!(&decoded, &element);
        prop_assert_eq!(decoded.sequence(), seq);
    }

    #[test]
    fn pages_round_trip_records(payload_lens in prop::collection::vec(0usize..300, 1..40)) {
        let mut page = Page::new();
        let mut stored: Vec<Vec<u8>> = Vec::new();
        for (i, len) in payload_lens.iter().enumerate() {
            let record = vec![(i % 251) as u8; *len];
            if page.fits(&record) {
                page.append(&record).unwrap();
                stored.push(record);
            }
        }
        let restored = Page::from_bytes(*page.as_bytes()).unwrap();
        prop_assert_eq!(restored.record_count(), stored.len());
        for (slot, record) in stored.iter().enumerate() {
            prop_assert_eq!(restored.record(slot).unwrap(), &record[..]);
        }
    }
}

// ---------------------------------------------------------------------------------------
// Buffer-pool invariants
// ---------------------------------------------------------------------------------------

/// An in-memory "disk" for exercising the pool; cloneable so a test keeps a handle to
/// the half that was boxed into the pool.
#[derive(Default, Clone)]
struct FakeDisk {
    pages: Arc<std::sync::Mutex<std::collections::HashMap<u32, Page>>>,
}

impl FakeDisk {
    fn page(&self, id: u32) -> Option<Page> {
        self.pages.lock().unwrap().get(&id).cloned()
    }
}

impl PageIo for FakeDisk {
    fn read_page(&mut self, id: u32) -> GsnResult<Page> {
        Ok(self.pages.lock().unwrap().entry(id).or_default().clone())
    }

    fn write_page(&mut self, id: u32, page: &Page) -> GsnResult<()> {
        self.pages.lock().unwrap().insert(id, page.clone());
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random access pattern with random pins: resident pages never exceed capacity and
    /// pinned pages are never evicted.
    #[test]
    fn buffer_pool_invariants_hold(
        capacity in 1usize..8,
        ops in prop::collection::vec((0u32..32, prop::bool::ANY), 1..200),
    ) {
        let pool = SharedBufferPool::new(capacity);
        let table = pool.register_table(Box::new(FakeDisk::default()));
        let mut pinned: Vec<u32> = Vec::new();
        for (page_id, pin) in ops {
            if pin && pinned.len() < capacity - 1 + usize::from(capacity == 1) {
                if pool.pin(table, page_id).is_ok() && !pinned.contains(&page_id) {
                    pinned.push(page_id);
                } else if pinned.contains(&page_id) {
                    // Double pin: release one immediately to keep bookkeeping simple.
                    pool.unpin(table, page_id, false);
                }
            } else {
                // Plain access; may evict an unpinned page.
                let _ = pool.with_page(table, page_id, |_| ());
            }
            prop_assert!(pool.resident_pages() <= capacity);
            for p in &pinned {
                prop_assert!(pool.pin_count(table, *p) > 0, "pinned page {p} lost its pin");
            }
        }
        // Every pinned page is still resident: accessing it costs no disk read.
        let misses_before = pool.stats().misses;
        for p in &pinned {
            pool.with_page(table, *p, |_| ()).unwrap();
        }
        prop_assert_eq!(pool.stats().misses, misses_before);
        for p in pinned {
            pool.unpin(table, p, false);
        }
    }

    /// Concurrent ingest into one shared pool: four threads, each with its own table,
    /// hammer reads/writes/pins at once.  The global budget is never exceeded, a thread's
    /// pinned page keeps its pin under cross-table eviction pressure, and every append
    /// survives to the (fake) disk.
    #[test]
    fn shared_pool_invariants_hold_under_contention(
        capacity in 6usize..16,
        seeds in prop::collection::vec(0u64..u64::MAX, 4..5),
        ops_per_thread in 50usize..200,
    ) {
        let pool = Arc::new(SharedBufferPool::new(capacity));
        let mut handles = Vec::new();
        for seed in seeds {
            let disk = FakeDisk::default();
            let table = pool.register_table(Box::new(disk.clone()));
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || -> Result<(), String> {
                let mut rng = seed | 1;
                let mut next = move || {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    rng
                };
                let mut appended = [0usize; 8];
                for _ in 0..ops_per_thread {
                    let page_id = (next() % 8) as u32;
                    match next() % 3 {
                        0 => {
                            let ok = pool
                                .with_page_mut(table, page_id, |p| p.append(b"x").is_some())
                                .map_err(|e| e.to_string())?;
                            if ok {
                                appended[page_id as usize] += 1;
                            }
                        }
                        1 => {
                            pool.with_page(table, page_id, |_| ()).map_err(|e| e.to_string())?;
                        }
                        _ => {
                            // Pin, verify the pin sticks while others evict, unpin.
                            if pool.pin(table, page_id).is_ok() {
                                pool.with_page(table, (next() % 8) as u32, |_| ()).ok();
                                if pool.pin_count(table, page_id) == 0 {
                                    return Err(format!("pinned page {page_id} lost its pin"));
                                }
                                pool.unpin(table, page_id, false);
                            }
                        }
                    }
                    let resident = pool.resident_pages();
                    if resident > capacity {
                        return Err(format!("resident {resident} exceeds capacity {capacity}"));
                    }
                }
                // Integrity: everything this thread appended reaches its own disk.
                pool.flush_table(table).map_err(|e| e.to_string())?;
                for (page_id, count) in appended.iter().enumerate() {
                    if *count == 0 {
                        continue;
                    }
                    let on_disk = disk
                        .page(page_id as u32)
                        .map(|p| p.record_count())
                        .unwrap_or(0);
                    if on_disk != *count {
                        return Err(format!(
                            "page {page_id}: {on_disk} records on disk, {count} appended"
                        ));
                    }
                }
                Ok(())
            }));
        }
        for handle in handles {
            let outcome = handle.join().expect("worker panicked");
            prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
        }
        prop_assert!(pool.resident_pages() <= capacity);
    }

    /// A persistent table scanned under a tiny pool returns exactly the same windows as
    /// an in-memory table fed the same data.
    #[test]
    fn persistent_windows_equal_memory_windows(
        values in prop::collection::vec(-500i64..500, 1..120),
        window_count in 1usize..60,
        span in 1i64..2_000,
        pool_pages in 1usize..4,
    ) {
        let dir = temp_dir("prop-windows");
        let schema = Arc::new(StreamSchema::from_pairs(&[("v", DataType::Integer)]).unwrap());
        let mut mem = StreamTable::new("t", Arc::clone(&schema), Retention::Unbounded);
        let mut per = StreamTable::persistent(
            "t",
            Arc::clone(&schema),
            Retention::Unbounded,
            &dir,
            PersistentOptions { pool_pages, ..Default::default() },
        )
        .unwrap();
        for (i, v) in values.iter().enumerate() {
            let ts = Timestamp((i as i64 + 1) * 10);
            mem.insert_values(vec![Value::Integer(*v)], ts).unwrap();
            per.insert_values(vec![Value::Integer(*v)], ts).unwrap();
        }
        let now = Timestamp(values.len() as i64 * 10);
        for window in [
            WindowSpec::Count(window_count),
            WindowSpec::LatestOnly,
            WindowSpec::Time(Duration::from_millis(span)),
        ] {
            let a = mem.window_relation("w", window, now).unwrap();
            let b = per.window_relation("w", window, now).unwrap();
            prop_assert_eq!(a.rows(), b.rows(), "window {:?}", window);
        }
        if let Some(pool) = per.pool_stats() {
            prop_assert!(pool.resident_pages <= pool_pages);
        }
        drop(per);
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------------------
// Restart recovery, end to end
// ---------------------------------------------------------------------------------------

fn permanent_descriptor(name: &str) -> VirtualSensorDescriptor {
    VirtualSensorDescriptor::builder(name)
        .unwrap()
        .output_field("avg_temp", DataType::Double)
        .unwrap()
        .permanent_storage(true)
        .input_stream(
            InputStreamSpec::new("main", "select * from src1").with_source(
                StreamSourceSpec::new(
                    "src1",
                    AddressSpec::new("mote").with_predicate("interval", "100"),
                    "select avg(temperature) as avg_temp from WRAPPER",
                )
                .with_window(WindowSpec::Count(10)),
            ),
        )
        .build()
        .unwrap()
}

/// The acceptance scenario: a container with a `permanent-storage="true"` virtual sensor
/// is dropped and re-opened on the same data directory; SQL over the recovered table
/// returns the pre-restart history.
#[test]
fn container_restart_recovers_permanent_history() {
    let dir = temp_dir("container-restart");
    let config = ContainerConfig::default().with_data_dir(&dir);

    // First incarnation: produce 10 outputs, then drop the container.
    {
        let clock = SimulatedClock::new();
        let mut node = GsnContainer::new(config.clone(), Arc::new(clock.clone()));
        node.deploy(permanent_descriptor("room-temp")).unwrap();
        clock.advance(Duration::from_secs(1));
        let report = node.step();
        assert_eq!(report.outputs, 10);
        let n = node.query("select count(*) as n from room_temp").unwrap();
        assert_eq!(n.rows()[0][0], Value::Integer(10));
    }

    // Second incarnation on the same directory: history is back before any new data.
    let clock = SimulatedClock::new();
    let mut node = GsnContainer::new(config, Arc::new(clock.clone()));
    node.deploy(permanent_descriptor("room-temp")).unwrap();
    let n = node.query("select count(*) as n from room_temp").unwrap();
    assert_eq!(
        n.rows()[0][0],
        Value::Integer(10),
        "pre-restart history lost"
    );

    // New production continues the stream: sequences keep growing past the old ones.
    clock.advance(Duration::from_secs(1));
    node.step();
    let n = node
        .query("select count(*) as n, max(pk) as maxpk from room_temp")
        .unwrap();
    assert_eq!(n.rows()[0][0], Value::Integer(20));
    assert_eq!(n.rows()[0][1], Value::Integer(20));

    drop(node);
    std::fs::remove_dir_all(&dir).ok();
}

/// Restart recovery with *stale and missing* index sidecars: a clean shutdown writes
/// one `.idx` sidecar per sealed segment; if a sidecar is then corrupted or deleted,
/// the next recovery must fall back to the page-walk rebuild for that segment (same
/// contents, same sequence numbering), and the following checkpoint must restore the
/// full sidecar set.
#[test]
fn restart_survives_stale_and_missing_index_sidecars() {
    let dir = temp_dir("index-sidecars");
    let schema = Arc::new(StreamSchema::from_pairs(&[("v", DataType::Integer)]).unwrap());
    let options = PersistentOptions {
        segment_pages: 2,
        pool_pages: 4,
        ..Default::default()
    };
    {
        let mut table = StreamTable::persistent(
            "idx",
            Arc::clone(&schema),
            Retention::Unbounded,
            &dir,
            options.clone(),
        )
        .unwrap();
        for i in 1..=2_000i64 {
            table
                .insert_values(vec![Value::Integer(i)], Timestamp(i))
                .unwrap();
        }
    } // clean shutdown: checkpoint writes the sidecars

    let sidecars = |dir: &std::path::Path| -> Vec<PathBuf> {
        let mut found: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "idx"))
            .collect();
        found.sort();
        found
    };
    let written = sidecars(&dir);
    assert!(
        written.len() >= 2,
        "expected sidecars for several sealed segments, found {written:?}"
    );

    // Make one sidecar stale (bit flip breaks its CRC) and delete another.
    let mut bytes = std::fs::read(&written[0]).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&written[0], &bytes).unwrap();
    std::fs::remove_file(&written[1]).unwrap();
    let damaged_count = sidecars(&dir).len();

    {
        let table = StreamTable::persistent(
            "idx",
            Arc::clone(&schema),
            Retention::Unbounded,
            &dir,
            options.clone(),
        )
        .unwrap();
        assert_eq!(table.last_sequence(), 2_000);
        let recovered: Vec<i64> = table
            .window_view(WindowSpec::Count(usize::MAX), Timestamp::MAX)
            .iter()
            .map(|e| e.value("V").unwrap().as_integer().unwrap())
            .collect();
        assert_eq!(
            recovered,
            (1..=2_000).collect::<Vec<i64>>(),
            "stale/missing sidecars must not change the recovered history"
        );
        // Index-bounded scans still work against the rebuilt in-memory index.
        let mut scan = table
            .open_scan_bounded(
                WindowSpec::Count(usize::MAX),
                Timestamp::MAX,
                &gsn::storage::ScanBounds {
                    min_seq: Some(1_500),
                    max_seq: Some(1_510),
                    ..Default::default()
                },
            )
            .unwrap();
        let mut bounded = Vec::new();
        while let Some(batch) = table.scan_next(&mut scan).unwrap() {
            bounded.extend(batch.iter().map(|e| e.sequence()));
        }
        assert_eq!(bounded, (1_500..=1_510).collect::<Vec<u64>>());
    } // checkpoint again: the stale and missing sidecars are rewritten

    assert!(
        sidecars(&dir).len() > damaged_count,
        "checkpoint must restore the deleted sidecar"
    );
    // Third open: everything valid again, contents still exact.
    let table = StreamTable::persistent(
        "idx",
        Arc::clone(&schema),
        Retention::Unbounded,
        &dir,
        options,
    )
    .unwrap();
    assert_eq!(table.last_sequence(), 2_000);
    assert_eq!(table.len(), 2_000);

    drop(table);
    std::fs::remove_dir_all(&dir).ok();
}

/// Restart recovery across a *segment-truncation* boundary: a bounded durable table
/// whose head segments were deleted (and boundary segment compacted) by the
/// maintenance pass recovers exactly its surviving rows, with sequence numbering
/// continuing where it stopped — the segment headers' `first_row` anchors survive the
/// reclamation.
#[test]
fn restart_recovers_across_a_segment_truncation_boundary() {
    let dir = temp_dir("segment-truncation-restart");
    let schema = Arc::new(StreamSchema::from_pairs(&[("v", DataType::Integer)]).unwrap());
    let options = PersistentOptions {
        segment_pages: 2,
        pool_pages: 4,
        ..Default::default()
    };
    let (oldest_live, reclaimed) = {
        let mut table = StreamTable::persistent(
            "truncated",
            Arc::clone(&schema),
            Retention::Elements(60),
            &dir,
            options.clone(),
        )
        .unwrap();
        for i in 1..=2_000i64 {
            table
                .insert_values(vec![Value::Integer(i)], Timestamp(i))
                .unwrap();
        }
        let stats = table.reclaim().unwrap();
        assert!(stats.segments_deleted > 0, "{stats:?}");
        (
            table.first_live_sequence().unwrap().unwrap(),
            stats.bytes_reclaimed,
        )
    }; // drop checkpoints
    assert!(reclaimed > 0);

    let mut table = StreamTable::persistent(
        "truncated",
        Arc::clone(&schema),
        Retention::Elements(60),
        &dir,
        options,
    )
    .unwrap();
    assert_eq!(table.last_sequence(), 2_000);
    assert_eq!(table.first_live_sequence().unwrap(), Some(oldest_live));
    let recovered: Vec<i64> = table
        .window_view(WindowSpec::Count(usize::MAX), Timestamp::MAX)
        .iter()
        .map(|e| e.value("V").unwrap().as_integer().unwrap())
        .collect();
    assert_eq!(
        recovered,
        (oldest_live as i64..=2_000).collect::<Vec<i64>>(),
        "recovered history must be the exact surviving suffix"
    );
    // Delta cursors resume with the exact sequence→row mapping after the restart.
    let mut scan = table.open_delta_scan(1_990).unwrap();
    let mut resumed = Vec::new();
    while let Some(batch) = table.scan_next(&mut scan).unwrap() {
        resumed.extend(
            batch
                .iter()
                .map(|e| e.value("V").unwrap().as_integer().unwrap()),
        );
    }
    assert_eq!(resumed, (1_991..=2_000).collect::<Vec<i64>>());
    // And ingest continues the numbering.
    let e = table
        .insert_values(vec![Value::Integer(2_001)], Timestamp(2_001))
        .unwrap();
    assert_eq!(e.sequence(), 2_001);
    drop(table);
    std::fs::remove_dir_all(&dir).ok();
}

/// Without a data directory, `permanent-storage="true"` behaves like the seed: memory
/// only, nothing recovered after a restart.
#[test]
fn without_data_dir_history_stays_in_memory() {
    {
        let clock = SimulatedClock::new();
        let mut node = GsnContainer::new(ContainerConfig::default(), Arc::new(clock.clone()));
        node.deploy(permanent_descriptor("volatile")).unwrap();
        clock.advance(Duration::from_secs(1));
        node.step();
        assert_eq!(node.storage().stats().persistent_tables, 0);
    }
    let clock = SimulatedClock::new();
    let mut node = GsnContainer::new(ContainerConfig::default(), Arc::new(clock));
    node.deploy(permanent_descriptor("volatile")).unwrap();
    let n = node.query("select count(*) as n from volatile").unwrap();
    assert_eq!(n.rows()[0][0], Value::Integer(0));
}

/// A table far larger than its buffer pool still answers windowed SQL correctly while
/// the pool stays within its page budget.
#[test]
fn bounded_pool_serves_table_larger_than_memory_budget() {
    let dir = temp_dir("bounded-pool");
    let pool_pages = 8;
    let storage = StorageManager::with_options(gsn::storage::StorageOptions {
        data_dir: Some(dir.clone()),
        persistent: PersistentOptions {
            pool_pages,
            ..Default::default()
        },
        window_spill_bytes: None,
        wal_shards: 0,
    });
    let schema = Arc::new(
        StreamSchema::from_pairs(&[("v", DataType::Integer), ("tag", DataType::Varchar)]).unwrap(),
    );
    storage
        .create_table_durable("big", Arc::clone(&schema), Retention::Unbounded)
        .unwrap();
    // ~50k elements × ~60 B ≈ 3 MB of rows; pool budget is 8 pages = 64 KiB.
    let total: i64 = 50_000;
    for i in 0..total {
        let e = StreamElement::new(
            Arc::clone(&schema),
            vec![Value::Integer(i), Value::varchar("sensor-payload-tag")],
            Timestamp(i),
        )
        .unwrap();
        storage.insert("big", e, Timestamp(i)).unwrap();
    }

    let stats = storage.stats();
    assert_eq!(stats.persistent_tables, 1);
    assert!(
        stats.pool.resident_pages <= pool_pages,
        "pool exceeded budget: {} > {pool_pages}",
        stats.pool.resident_pages
    );

    // Windowed SQL over the whole table and over a tail slice, through the catalog path.
    let catalog = storage
        .windowed_catalog(
            &[
                gsn::storage::CatalogView::new("all_rows", "big", WindowSpec::Count(usize::MAX)),
                gsn::storage::CatalogView::new("tail", "big", WindowSpec::Count(1_000)),
            ],
            Timestamp(total),
        )
        .unwrap();
    let mut engine = gsn::sql::SqlEngine::new();
    let n = engine
        .execute_scalar("select count(*) from all_rows", &catalog)
        .unwrap();
    assert_eq!(n, Value::Integer(total));
    let sum = engine
        .execute_scalar("select min(v) from tail", &catalog)
        .unwrap();
    assert_eq!(sum, Value::Integer(total - 1_000));

    let stats = storage.stats();
    assert!(
        stats.pool.resident_pages <= pool_pages,
        "scan blew the pool budget: {} > {pool_pages}",
        stats.pool.resident_pages
    );
    assert!(
        stats.pool.evictions > 0,
        "a 3 MB table must evict with a 64 KiB pool"
    );

    storage.drop_table("big").unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A *failed* re-deploy must not delete the durable history it just recovered: the
/// rollback releases the output table instead of destroying its files.
#[test]
fn failed_redeploy_preserves_durable_history() {
    let dir = temp_dir("failed-redeploy");
    let config = ContainerConfig::default().with_data_dir(&dir);
    {
        let clock = SimulatedClock::new();
        let mut node = GsnContainer::new(config.clone(), Arc::new(clock.clone()));
        node.deploy(permanent_descriptor("precious")).unwrap();
        clock.advance(Duration::from_secs(1));
        node.step();
    }

    // Same sensor name and schema, but a second source naming an unknown wrapper: the
    // deploy recovers the output table, then fails and must roll back without deleting.
    let broken = VirtualSensorDescriptor::builder("precious")
        .unwrap()
        .output_field("avg_temp", DataType::Double)
        .unwrap()
        .permanent_storage(true)
        .input_stream(
            InputStreamSpec::new("main", "select * from src1")
                .with_source(
                    StreamSourceSpec::new(
                        "src1",
                        AddressSpec::new("mote").with_predicate("interval", "100"),
                        "select avg(temperature) as avg_temp from WRAPPER",
                    )
                    .with_window(WindowSpec::Count(10)),
                )
                .with_source(StreamSourceSpec::new(
                    "src2",
                    AddressSpec::new("hyperspectral-imager"),
                    "select * from WRAPPER",
                )),
        )
        .build()
        .unwrap();

    let clock = SimulatedClock::new();
    let mut node = GsnContainer::new(config, Arc::new(clock));
    assert!(node.deploy(broken).is_err());

    // The good descriptor still recovers the full pre-restart history.
    node.deploy(permanent_descriptor("precious")).unwrap();
    let n = node.query("select count(*) as n from precious").unwrap();
    assert_eq!(
        n.rows()[0][0],
        Value::Integer(10),
        "failed re-deploy destroyed recovered history"
    );
    drop(node);
    std::fs::remove_dir_all(&dir).ok();
}

/// Undeploying a sensor deletes its durable files; redeploying starts fresh.
#[test]
fn undeploy_deletes_durable_state() {
    let dir = temp_dir("undeploy");
    let config = ContainerConfig::default().with_data_dir(&dir);
    let clock = SimulatedClock::new();
    let mut node = GsnContainer::new(config, Arc::new(clock.clone()));
    node.deploy(permanent_descriptor("ephemeral")).unwrap();
    clock.advance(Duration::from_secs(1));
    node.step();
    assert_eq!(node.storage().stats().persistent_tables, 1);
    node.undeploy("ephemeral").unwrap();

    node.deploy(permanent_descriptor("ephemeral")).unwrap();
    let n = node.query("select count(*) as n from ephemeral").unwrap();
    assert_eq!(n.rows()[0][0], Value::Integer(0));
    drop(node);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------------------
// Lock-free hot path: region sharding and per-shard WAL batching
// ---------------------------------------------------------------------------------------

/// Concurrent scans of pages living in distinct clock regions never block each other:
/// with four tables whose hot pages land in four different regions, the hit path takes
/// only the owning region's latch, so the pool's `contended` counter must stay zero
/// however the threads interleave.
#[test]
fn concurrent_scans_of_distinct_regions_never_contend() {
    let pool = Arc::new(SharedBufferPool::with_regions(8, 8));
    assert!(pool.region_count() >= 4);
    let mut tables = Vec::new();
    for _ in 0..4 {
        let table = pool.register_table(Box::new(FakeDisk::default()));
        pool.with_page(table, 0, |_| ()).unwrap(); // warm each table's hot page
        tables.push(table);
    }
    // The warmed pages really occupy four distinct regions — otherwise the test would
    // be vacuous (and the region hash has regressed).
    let occupied: Vec<usize> = pool
        .region_stats()
        .iter()
        .filter(|r| r.resident_pages > 0)
        .map(|r| r.region)
        .collect();
    assert_eq!(
        occupied.len(),
        4,
        "4 warmed pages must land in 4 distinct regions, got {occupied:?}"
    );

    let barrier = Arc::new(std::sync::Barrier::new(tables.len()));
    let mut handles = Vec::new();
    for table in tables {
        let pool = Arc::clone(&pool);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..5_000 {
                pool.with_page(table, 0, |_| ()).unwrap();
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }

    let stats = pool.stats();
    assert_eq!(
        stats.contended, 0,
        "distinct-region scans took a contended latch: {stats:?}"
    );
    assert!(stats.hits >= 4 * 5_000);
    assert_eq!(
        stats.misses, 4,
        "only the four warm-up reads may touch disk"
    );
}

/// Per-shard WAL batching is crash-equivalent to the old one-log-per-table commit: the
/// same ingest is run under `wal_shards: 4` (tables multiplexed onto shard logs, one
/// batched fsync per active shard per step) and `wal_shards: 0` (a private log per
/// table), both managers are "crashed" after the step commit with dirty pages unflushed
/// (`mem::forget` skips the checkpoint-on-drop), and recovery must replay byte-identical
/// table contents from either log layout.
#[test]
fn sharded_wal_replays_to_same_state_as_private_wals() {
    let schema = Arc::new(StreamSchema::from_pairs(&[("v", DataType::Integer)]).unwrap());
    let tables = ["alpha", "bravo", "charlie", "delta", "echo"];
    let rows_per_table = 200i64;

    let run = |tag: &str, wal_shards: usize| -> Vec<Vec<Vec<Value>>> {
        let dir = temp_dir(tag);
        let options = gsn::storage::StorageOptions {
            data_dir: Some(dir.clone()),
            persistent: PersistentOptions {
                sync: gsn::storage::SyncMode::Always,
                group_commit: true,
                ..Default::default()
            },
            window_spill_bytes: None,
            wal_shards,
        };

        let storage = StorageManager::with_options(options.clone());
        for (t, name) in tables.iter().enumerate() {
            storage
                .create_table_durable(name, Arc::clone(&schema), Retention::Unbounded)
                .unwrap();
            for i in 0..rows_per_table {
                let e = StreamElement::new(
                    Arc::clone(&schema),
                    vec![Value::Integer(t as i64 * 10_000 + i)],
                    Timestamp(i),
                )
                .unwrap();
                storage.insert(name, e, Timestamp(i)).unwrap();
            }
        }
        // The step-loop commit: flushes every pending WAL batch (one fsync per active
        // shard in the sharded layout, one per table otherwise).
        storage.group_commit().unwrap();
        // Crash: skip `Drop`, so no page flush and no checkpoint ever happens — the
        // recovered state below comes entirely from replaying the log(s).
        std::mem::forget(storage);

        let shard_files = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("wal-shard-")
            })
            .count();
        if wal_shards > 0 {
            assert!(
                shard_files > 0,
                "sharded run produced no wal-shard-*.wal files"
            );
        } else {
            assert_eq!(
                shard_files, 0,
                "unsharded run must keep per-table logs only"
            );
        }

        let storage = StorageManager::with_options(options);
        for name in &tables {
            storage
                .create_table_durable(name, Arc::clone(&schema), Retention::Unbounded)
                .unwrap();
        }
        let views: Vec<gsn::storage::CatalogView> = tables
            .iter()
            .map(|name| gsn::storage::CatalogView::new(name, name, WindowSpec::Count(usize::MAX)))
            .collect();
        let catalog = storage
            .windowed_catalog(&views, Timestamp(rows_per_table))
            .unwrap();
        let mut engine = gsn::sql::SqlEngine::new();
        let recovered = tables
            .iter()
            .map(|name| {
                engine
                    .execute(&format!("select v from {name}"), &catalog)
                    .unwrap()
                    .rows()
                    .to_vec()
            })
            .collect();
        drop(storage);
        std::fs::remove_dir_all(&dir).ok();
        recovered
    };

    let sharded = run("wal-crash-sharded", 4);
    let private = run("wal-crash-private", 0);
    assert_eq!(
        sharded, private,
        "recovered state diverged between WAL layouts"
    );
    assert_eq!(sharded.len(), tables.len());
    for (t, rows) in sharded.iter().enumerate() {
        assert_eq!(rows.len(), rows_per_table as usize, "table {t} lost rows");
        assert_eq!(rows[0][0], Value::Integer(t as i64 * 10_000));
    }
}
