//! Incremental continuous-query engine: correctness properties.
//!
//! 1. **Incremental-vs-full parity.**  For randomly generated registered queries
//!    (filter × aggregate × window × sampling) over random ingest schedules, a
//!    repository evaluating incrementally (delta cursor + resident operator state)
//!    must produce *identical* results to one re-executing the full window per
//!    element.
//! 2. **Sharded evaluation parity.**  A container running `workers = 4` — whose query
//!    repository is partitioned across four shards — must report the same per-sensor
//!    outputs and the same registered-query activity as the sequential `workers = 1`
//!    run.

use std::sync::Arc;

use gsn::container::ContainerConfig;
use gsn::container::QueryRepository;
use gsn::storage::{Retention, StorageManager, WindowSpec};
use gsn::types::{
    DataType, Duration, SimulatedClock, StreamElement, StreamSchema, Timestamp, Value,
};
use gsn::xml::{AddressSpec, InputStreamSpec, StreamSourceSpec, VirtualSensorDescriptor};
use gsn::{GsnContainer, StepReport};
use proptest::prelude::*;

fn schema() -> Arc<StreamSchema> {
    Arc::new(
        StreamSchema::from_pairs(&[
            ("temperature", DataType::Integer),
            ("room", DataType::Varchar),
        ])
        .unwrap(),
    )
}

/// The query fragments the generator combines (all integer-valued, so incremental
/// SUM/AVG state is exact).
const FILTERS: &[&str] = &[
    "",
    " where temperature > 10",
    " where temperature between 5 and 24",
    " where room = 'bc143'",
    " where temperature > 3 and room <> 'bc145'",
    " where temperature is not null and temperature % 2 = 0",
];

const SHAPES: &[&str] = &[
    "select pk, temperature, room from sensor_out",
    "select temperature * 2 as double_t from sensor_out",
    "select count(*) as n from sensor_out",
    "select count(*) as n, sum(temperature) as s, avg(temperature) as a from sensor_out",
    "select min(temperature) as lo, max(temperature) as hi from sensor_out",
    "select first(temperature) as f, last(temperature) as l from sensor_out",
    "select count(distinct room) as n from sensor_out",
    "select room, count(*) as n, avg(temperature) as a from sensor_out group by room",
    "select room, max(temperature) as hi from sensor_out group by room having count(*) > 1",
    // Not incrementally maintainable: exercises the transparent fallback path too.
    "select temperature from sensor_out order by temperature desc limit 3",
];

#[derive(Debug, Clone)]
struct QuerySpec {
    shape: usize,
    filter: usize,
    window: WindowSpec,
    sampling: Option<f64>,
}

fn arb_query() -> impl Strategy<Value = QuerySpec> {
    (
        0..SHAPES.len(),
        0..FILTERS.len(),
        prop_oneof![
            (1usize..25).prop_map(WindowSpec::Count),
            (100i64..2_000).prop_map(|ms| WindowSpec::Time(Duration::from_millis(ms))),
            Just(WindowSpec::LatestOnly),
        ],
        prop_oneof![
            Just(None),
            Just(Some(0.5)),
            Just(Some(0.34)),
            Just(Some(1.0)),
        ],
    )
        .prop_map(|(shape, filter, window, sampling)| QuerySpec {
            shape,
            filter,
            window,
            sampling,
        })
}

fn query_sql(spec: &QuerySpec) -> String {
    let shape = SHAPES[spec.shape];
    let filter = FILTERS[spec.filter];
    // Splice the WHERE clause before any ORDER BY / GROUP BY tail.
    for keyword in ["group by", "order by"] {
        if let Some(pos) = shape.find(keyword) {
            let (head, tail) = shape.split_at(pos);
            return format!("{}{} {}", head.trim_end(), filter, tail);
        }
    }
    format!("{shape}{filter}")
}

/// One ingest step: a small batch of elements, then an evaluation.
#[derive(Debug, Clone)]
struct IngestStep {
    batch: Vec<(i64, usize)>,
    advance_ms: i64,
}

fn arb_schedule() -> impl Strategy<Value = Vec<IngestStep>> {
    prop::collection::vec(
        (
            prop::collection::vec((0i64..30, 0usize..3), 1..4),
            1i64..400,
        )
            .prop_map(|(batch, advance_ms)| IngestStep { batch, advance_ms }),
        1..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: incremental and full evaluation agree on every result
    /// relation at every evaluation point, for every query/window/sampling mix.
    #[test]
    fn incremental_matches_full_reevaluation(
        queries in prop::collection::vec(arb_query(), 1..5),
        schedule in arb_schedule(),
    ) {
        let rooms = ["bc143", "bc144", "bc145"];
        let storage = StorageManager::new();
        storage
            .create_table("sensor_out", schema(), Retention::Unbounded)
            .unwrap();
        let incremental = QueryRepository::with_partitions(1, true, true);
        let full = QueryRepository::with_partitions(1, true, false);
        for (i, spec) in queries.iter().enumerate() {
            let sql = query_sql(spec);
            incremental
                .register(&format!("c{i}"), &sql, spec.window, spec.sampling)
                .unwrap();
            full.register(&format!("c{i}"), &sql, spec.window, spec.sampling)
                .unwrap();
        }

        let mut now = Timestamp(0);
        for step in &schedule {
            now = Timestamp(now.as_millis() + step.advance_ms);
            for (temperature, room) in &step.batch {
                let element = StreamElement::new(
                    schema(),
                    vec![Value::Integer(*temperature), Value::varchar(rooms[*room])],
                    now,
                )
                .unwrap();
                storage.insert("sensor_out", element, now).unwrap();
            }
            let a = incremental.evaluate_for_table("sensor_out", &storage, now);
            let b = full.evaluate_for_table("sensor_out", &storage, now);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.query_id, y.query_id);
                prop_assert_eq!(
                    x.relation.rows(),
                    y.relation.rows(),
                    "query `{}` diverged at t={}",
                    incremental
                        .registered()
                        .iter()
                        .find(|q| q.id == x.query_id)
                        .map(|q| q.sql.clone())
                        .unwrap_or_default(),
                    now.as_millis()
                );
                prop_assert_eq!(x.relation.columns(), y.relation.columns());
            }
        }
        // Both modes evaluated everything; the full repository never went incremental.
        prop_assert_eq!(full.telemetry().incremental_evaluated.get(), 0);
        let (full_stats, _) = full.stats();
        let (inc_stats, _) = incremental.stats();
        prop_assert_eq!(
            inc_stats.registered_evaluated + inc_stats.registered_failed,
            full_stats.registered_evaluated + full_stats.registered_failed
        );
    }

    /// Bounded-retention tables: the storage prunes under the query's feet; the
    /// incremental state must retract exactly what the full path no longer sees.
    #[test]
    fn incremental_tracks_retention_pruning(
        retention in 3usize..12,
        window in 1usize..30,
        schedule in arb_schedule(),
    ) {
        let storage = StorageManager::new();
        storage
            .create_table("sensor_out", schema(), Retention::Elements(retention))
            .unwrap();
        let incremental = QueryRepository::with_partitions(1, true, true);
        let full = QueryRepository::with_partitions(1, true, false);
        for repo in [&incremental, &full] {
            repo.register(
                "c",
                "select pk, temperature from sensor_out where temperature > 7",
                WindowSpec::Count(window),
                None,
            )
            .unwrap();
            repo.register(
                "agg",
                "select count(*) as n, min(temperature) as lo from sensor_out",
                WindowSpec::Count(window),
                None,
            )
            .unwrap();
        }
        let mut now = Timestamp(0);
        for step in &schedule {
            now = Timestamp(now.as_millis() + step.advance_ms);
            for (temperature, _) in &step.batch {
                let element = StreamElement::new(
                    schema(),
                    vec![Value::Integer(*temperature), Value::varchar("bc143")],
                    now,
                )
                .unwrap();
                storage.insert("sensor_out", element, now).unwrap();
            }
            let a = incremental.evaluate_for_table("sensor_out", &storage, now);
            let b = full.evaluate_for_table("sensor_out", &storage, now);
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.relation.rows(), y.relation.rows());
            }
        }
        prop_assert_eq!(
            incremental.telemetry().fallback_evaluated.get(),
            0,
            "both shapes must stay incremental"
        );
    }
}

/// Lazy seeding over a durable history: a freshly registered time-window query must
/// seed its resident state through an index-bounded range scan — reading only the
/// pages overlapping the window, not the whole multi-megabyte heap.
#[test]
fn time_window_seeding_reads_a_bounded_page_range() {
    let dir = std::env::temp_dir().join(format!(
        "gsn-cq-seed-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let storage = StorageManager::with_options(gsn::storage::StorageOptions::at(&dir));
    storage
        .create_table_durable("sensor_out", schema(), Retention::Unbounded)
        .unwrap();
    const ROWS: i64 = 40_000;
    for i in 0..ROWS {
        let element = StreamElement::new(
            schema(),
            vec![Value::Integer(i % 30), Value::varchar("bc143")],
            Timestamp(i),
        )
        .unwrap();
        storage.insert("sensor_out", element, Timestamp(i)).unwrap();
    }

    let incremental = QueryRepository::with_partitions(1, true, true);
    incremental
        .register(
            "c",
            "select count(*) as n, sum(temperature) as s from sensor_out",
            WindowSpec::Time(Duration::from_millis(1_000)),
            None,
        )
        .unwrap();

    let now = Timestamp(ROWS - 1);
    let pool_before = storage.buffer_pool().stats();
    let skipped_before = storage.telemetry().index_pages_skipped.get();
    let results = incremental.evaluate_for_table("sensor_out", &storage, now);
    let pool_after = storage.buffer_pool().stats();

    // Window covers ts >= 38_999: exactly 1_001 of the 40_000 rows.
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].relation.rows()[0][0], Value::Integer(1_001));

    let seed_reads =
        (pool_after.hits + pool_after.misses) - (pool_before.hits + pool_before.misses);
    assert!(
        seed_reads <= 32,
        "seeding a 1k-row window read {seed_reads} pages of a 40k-row heap"
    );
    assert!(
        storage.telemetry().index_pages_skipped.get() > skipped_before,
        "the segment index should have skipped the cold pages"
    );

    // Parity: the bounded seed computes the same answer as full re-evaluation.
    let full = QueryRepository::with_partitions(1, true, false);
    full.register(
        "c",
        "select count(*) as n, sum(temperature) as s from sensor_out",
        WindowSpec::Time(Duration::from_millis(1_000)),
        None,
    )
    .unwrap();
    let reference = full.evaluate_for_table("sensor_out", &storage, now);
    assert_eq!(results[0].relation.rows(), reference[0].relation.rows());

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------------------
// Sharded query evaluation parity (workers = 1 vs workers = 4)
// ---------------------------------------------------------------------------------------

fn mote_descriptor(name: &str, interval_ms: u32, seed: u32) -> VirtualSensorDescriptor {
    VirtualSensorDescriptor::builder(name)
        .unwrap()
        .output_field("avg_temp", DataType::Double)
        .unwrap()
        .permanent_storage(true)
        .input_stream(
            InputStreamSpec::new("main", "select * from src1").with_source(
                StreamSourceSpec::new(
                    "src1",
                    AddressSpec::new("mote")
                        .with_predicate("interval", &interval_ms.to_string())
                        .with_predicate("seed", &seed.to_string()),
                    "select avg(temperature) as avg_temp from WRAPPER",
                )
                .with_window(WindowSpec::Count(10)),
            ),
        )
        .build()
        .unwrap()
}

/// Reads a named counter out of the status' embedded metrics snapshot.
fn counter(status: &gsn::container::ContainerStatus, name: &str) -> u64 {
    status
        .metrics
        .get(name)
        .and_then(|sample| sample.as_counter())
        .unwrap_or(0)
}

struct QueryRun {
    reports: Vec<StepReport>,
    tables: Vec<Vec<Vec<Value>>>,
    evaluated: u64,
    incremental: u64,
    fallback: u64,
    failed: u64,
    partitions_used: usize,
}

fn run_query_workload(workers: usize, incremental: bool) -> QueryRun {
    const SENSORS: usize = 8;
    let clock = SimulatedClock::new();
    let config = ContainerConfig {
        incremental_queries: incremental,
        ..ContainerConfig::default().with_workers(workers)
    };
    let mut node = GsnContainer::new(config, Arc::new(clock.clone()));
    let names: Vec<String> = (0..SENSORS).map(|i| format!("mote-{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        node.deploy(mote_descriptor(name, 100 + 50 * (i as u32 % 4), i as u32))
            .unwrap();
        let table = name.replace('-', "_");
        // Two registered queries per sensor: one incremental-friendly aggregate, one
        // shape that falls back — both must behave identically across worker counts.
        node.register_query(
            &format!("agg-client-{i}"),
            &format!("select count(*) as n, avg(avg_temp) as a from {table}"),
            WindowSpec::Count(20),
            None,
        )
        .unwrap();
        node.register_query(
            &format!("top-client-{i}"),
            &format!("select avg_temp from {table} order by avg_temp desc limit 2"),
            WindowSpec::Count(20),
            None,
        )
        .unwrap();
    }
    let mut reports = Vec::new();
    for _ in 0..5 {
        clock.advance(Duration::from_secs(1));
        let mut report = node.step();
        report.processing_micros = 0;
        reports.push(report);
    }
    let tables = names
        .iter()
        .map(|name| {
            node.query(&format!(
                "select pk, avg_temp from {}",
                name.replace('-', "_")
            ))
            .unwrap()
            .rows()
            .to_vec()
        })
        .collect();
    let status = node.status();
    QueryRun {
        reports,
        tables,
        evaluated: status.queries.registered_evaluated,
        incremental: counter(&status, "gsn_query_incremental_total"),
        fallback: counter(&status, "gsn_query_fallback_total"),
        failed: status.queries.registered_failed,
        partitions_used: status
            .query_partitions
            .iter()
            .filter(|p| p.registered > 0)
            .count(),
    }
}

#[test]
fn sharded_query_evaluation_matches_sequential() {
    let sequential = run_query_workload(1, true);
    let sharded = run_query_workload(4, true);

    assert_eq!(sequential.reports, sharded.reports);
    assert_eq!(sequential.tables, sharded.tables);
    assert_eq!(sequential.evaluated, sharded.evaluated);
    assert_eq!(sequential.incremental, sharded.incremental);
    assert_eq!(sequential.fallback, sharded.fallback);
    assert_eq!(sequential.failed, 0);
    assert_eq!(sharded.failed, 0);

    // The workload actually exercised both paths, and the sharded run spread its
    // queries across more than one partition.
    assert!(sequential.evaluated > 0);
    assert!(sequential.incremental > 0);
    assert!(sequential.fallback > 0);
    assert_eq!(sequential.partitions_used, 1);
    assert!(
        sharded.partitions_used > 1,
        "queries all hashed to one shard"
    );
}

#[test]
fn incremental_and_full_containers_agree_on_counters() {
    let incremental = run_query_workload(4, true);
    let full = run_query_workload(4, false);
    // Evaluation *activity* is identical; only the execution strategy differs.
    assert_eq!(incremental.reports, full.reports);
    assert_eq!(incremental.tables, full.tables);
    assert_eq!(incremental.evaluated, full.evaluated);
    assert_eq!(full.incremental, 0);
    assert_eq!(full.fallback, full.evaluated);
}
