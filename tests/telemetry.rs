//! Telemetry-layer integration tests.
//!
//! 1. **Histogram correctness.**  The log-bucketed latency histogram must report
//!    exact counts/sums/maxima, monotone quantiles, and merge-equals-combined
//!    recording, for arbitrary inputs.
//! 2. **Container export surface.**  A stepped container exposes ≥30 distinct
//!    metrics spanning the step loop, storage, SQL and network subsystems, and
//!    its Prometheus rendering parses as well-formed exposition text.
//! 3. **Structured tracing.**  Spans are off (and free) by default; when enabled
//!    the pipeline hierarchy (step → phases, element → pipeline/query/notify)
//!    is recorded with intact parent links.
//! 4. **Slow-query log.**  Queries over the threshold land in the log with
//!    their plan explain; the log stays empty at the default threshold 0.
//! 5. **Federation scraping.**  A peer's `MetricsSnapshot` arrives over a lossy
//!    simnet link via request/retry, exactly like remote-cursor traffic.
//! 6. **Distributed trace propagation.**  Traced federated queries over a
//!    25%-loss simnet assemble exactly one connected tree per trace id, and
//!    untraced ("old wire format") containers interoperate with traced ones.
//! 7. **Overhead guard** (`--ignored`, bench mode): the instrumented step loop
//!    — tracing enabled — stays within 3% of the checked-in
//!    `BENCH_parallel.json` baseline.

use std::sync::Arc;

use gsn::container::ContainerConfig;
use gsn::network::LinkSpec;
use gsn::telemetry::{Histogram, SpanId};
use gsn::types::{DataType, Duration, NodeId, SimulatedClock};
use gsn::xml::{AddressSpec, InputStreamSpec, StreamSourceSpec, VirtualSensorDescriptor};
use gsn::{Federation, GsnContainer, Mesh, WindowSpec};
use proptest::prelude::*;

fn mote_descriptor(name: &str, interval_ms: u32, seed: u32) -> VirtualSensorDescriptor {
    VirtualSensorDescriptor::builder(name)
        .unwrap()
        .output_field("avg_temp", DataType::Double)
        .unwrap()
        .input_stream(
            InputStreamSpec::new("main", "select * from src1").with_source(
                StreamSourceSpec::new(
                    "src1",
                    AddressSpec::new("mote")
                        .with_predicate("interval", &interval_ms.to_string())
                        .with_predicate("seed", &seed.to_string()),
                    "select avg(temperature) as avg_temp from WRAPPER",
                )
                .with_window(WindowSpec::Count(10)),
            ),
        )
        .build()
        .unwrap()
}

/// A small stepped workload: `sensors` motes, one registered query, `steps`
/// one-second steps, one ad-hoc query at the end.
fn stepped_node(config: ContainerConfig, sensors: usize, steps: usize) -> GsnContainer {
    let clock = SimulatedClock::new();
    let mut node = GsnContainer::new(config, Arc::new(clock.clone()));
    for i in 0..sensors {
        node.deploy(mote_descriptor(&format!("mote-{i}"), 100, i as u32))
            .unwrap();
    }
    node.register_query(
        "client-0",
        "select count(*) as n, avg(avg_temp) as a from mote_0",
        WindowSpec::Count(20),
        None,
    )
    .unwrap();
    for _ in 0..steps {
        clock.advance(Duration::from_secs(1));
        let report = node.step();
        assert_eq!(report.errors, 0);
    }
    node.query("select pk, avg_temp from mote_0").unwrap();
    node
}

// ---------------------------------------------------------------------------------------
// Histogram correctness
// ---------------------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_summary_is_exact_and_monotone(
        values in prop::collection::vec(0u64..2_000_000, 1..200)
    ) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let s = hist.summary();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        prop_assert_eq!(s.max, *values.iter().max().unwrap());
        // Quantiles are bucket upper bounds: monotone, bounded by the exact max's
        // bucket, and never below the smallest observation.
        prop_assert!(s.p50 <= s.p90);
        prop_assert!(s.p90 <= s.p99);
        let min = *values.iter().min().unwrap();
        prop_assert!(s.p50 >= min, "p50 {} below min {}", s.p50, min);
        // Power-of-two buckets: the p99 upper bound is less than 2x the true max.
        prop_assert!(s.p99 < s.max.max(1).saturating_mul(2));
    }

    #[test]
    fn histogram_merge_equals_combined_recording(
        xs in prop::collection::vec(0u64..1_000_000, 0..100),
        ys in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for &v in &xs {
            a.record(v);
            combined.record(v);
        }
        for &v in &ys {
            b.record(v);
            combined.record(v);
        }
        a.merge_from(&b);
        prop_assert_eq!(a.summary(), combined.summary());
    }
}

// ---------------------------------------------------------------------------------------
// Container export surface
// ---------------------------------------------------------------------------------------

#[test]
fn container_exports_metrics_across_every_subsystem() {
    let node = stepped_node(ContainerConfig::default(), 2, 3);
    let snapshot = node.metrics_snapshot();
    assert!(
        snapshot.distinct_names() >= 30,
        "only {} distinct metrics exported",
        snapshot.distinct_names()
    );
    for prefix in ["gsn_step", "gsn_storage", "gsn_sql", "gsn_query", "gsn_net"] {
        assert!(
            snapshot.metrics.iter().any(|m| m.name.starts_with(prefix)),
            "no metric with prefix {prefix}"
        );
    }
    // The step loop actually recorded: counters moved and latencies were observed.
    assert_eq!(
        snapshot.get("gsn_steps_total").unwrap().as_counter(),
        Some(3)
    );
    let lat = snapshot
        .get("gsn_step_micros")
        .unwrap()
        .as_histogram()
        .unwrap();
    assert_eq!(lat.count, 3);
    assert!(
        snapshot
            .get("gsn_step_local_arrivals_total")
            .unwrap()
            .as_counter()
            .unwrap()
            > 0
    );
    assert!(
        snapshot
            .get("gsn_storage_rows_inserted_total")
            .unwrap()
            .as_counter()
            .unwrap()
            > 0
    );
    assert!(
        snapshot
            .get("gsn_sql_executions_total")
            .unwrap()
            .as_counter()
            .unwrap()
            > 0
    );
}

/// A minimal Prometheus text-exposition parser: every non-comment line must be
/// `name[{labels}] value`, every series name must have HELP/TYPE headers, and
/// every TYPE must be a legal Prometheus type.
#[test]
fn prometheus_rendering_is_well_formed_exposition_text() {
    let node = stepped_node(ContainerConfig::default(), 2, 3);
    let text = node.render_prometheus();
    assert!(!text.is_empty());
    let mut typed: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("TYPE line has a name");
            let kind = parts.next().expect("TYPE line has a type");
            assert!(
                ["counter", "gauge", "summary", "histogram", "untyped"].contains(&kind),
                "illegal TYPE {kind} for {name}"
            );
            typed.push(name.to_owned());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        // Series line: `name value` or `name{label="v",...} value`.
        let (series, value) = line.rsplit_once(' ').expect("series line has a value");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("unparseable sample value in {line:?}"));
        let base = series.split('{').next().unwrap();
        assert!(
            base.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "illegal metric name {base:?}"
        );
        if series.contains('{') {
            assert!(series.ends_with('}'), "unterminated label set in {line:?}");
        }
        // Histograms render `_sum` / `_count` series under the family's headers.
        let family = base
            .strip_suffix("_sum")
            .filter(|f| typed.contains(&f.to_string()))
            .or_else(|| {
                base.strip_suffix("_count")
                    .filter(|f| typed.contains(&f.to_string()))
            })
            .unwrap_or(base);
        assert!(
            typed.iter().any(|t| t == family),
            "series {base} has no preceding TYPE header"
        );
    }
    assert!(
        typed.len() >= 30,
        "only {} metric families rendered",
        typed.len()
    );
}

// ---------------------------------------------------------------------------------------
// Structured tracing
// ---------------------------------------------------------------------------------------

#[test]
fn tracing_is_off_by_default_and_captures_hierarchy_when_enabled() {
    // Default: disabled, nothing recorded.
    let quiet = stepped_node(ContainerConfig::default(), 1, 2);
    assert!(!quiet.trace_log().is_enabled());
    assert!(quiet.trace_log().snapshot().is_empty());

    // Enabled: the step and element hierarchies are captured with parent links.
    let node = stepped_node(ContainerConfig::default().with_tracing(true), 1, 2);
    let spans = node.trace_log().snapshot();
    assert!(!spans.is_empty());

    let step_root = spans
        .iter()
        .find(|s| s.name == "step")
        .expect("step root span");
    assert_eq!(step_root.parent, SpanId::NONE);
    let phases: Vec<&str> = spans
        .iter()
        .filter(|s| s.parent == step_root.id)
        .map(|s| s.name)
        .collect();
    assert!(phases.contains(&"step.pipelines"), "phases: {phases:?}");
    assert!(phases.contains(&"step.storage"), "phases: {phases:?}");

    let element_root = spans
        .iter()
        .find(|s| s.name == "element")
        .expect("element root span");
    assert_eq!(element_root.parent, SpanId::NONE);
    let children = node.trace_log().descendants_of(element_root.id);
    assert!(
        children.iter().any(|s| s.name == "pipeline"),
        "element children: {:?}",
        children.iter().map(|s| s.name).collect::<Vec<_>>()
    );
    // The wrapper poll runs outside any element (it *produces* the elements).
    assert!(spans.iter().any(|s| s.name == "wrapper.poll"));
    assert_eq!(node.trace_log().dropped(), 0);
}

// ---------------------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------------------

#[test]
fn slow_query_log_captures_queries_over_the_threshold() {
    // Threshold 0 (the default) keeps the log disabled entirely.
    let quiet = stepped_node(ContainerConfig::default(), 1, 2);
    assert!(quiet.slow_queries().is_empty());

    // Threshold 1µs: effectively every query lands in the log, with its explain.
    let node = stepped_node(
        ContainerConfig::default().with_slow_query_threshold(1),
        1,
        2,
    );
    let slow = node.slow_queries();
    assert!(
        !slow.is_empty(),
        "no slow queries captured at 1µs threshold"
    );
    let adhoc = slow
        .iter()
        .find(|q| q.sql.contains("select pk, avg_temp from mote_0"))
        .expect("the ad-hoc query is in the log");
    assert!(adhoc.micros >= 1);
    assert!(
        !adhoc.explain.is_empty(),
        "slow query carries its plan explain"
    );
    assert!(adhoc.rows_returned > 0);
}

// ---------------------------------------------------------------------------------------
// Federation scraping
// ---------------------------------------------------------------------------------------

#[test]
fn peers_scrape_metrics_snapshots_over_a_lossy_link() {
    let mut fed = Federation::new();
    let alpha = fed.add_node("alpha").unwrap();
    let beta = fed.add_node("beta").unwrap();
    // A lossy wireless link in both directions: the scrape must survive retries.
    fed.set_link(alpha, beta, LinkSpec::wireless(5, 0.25));

    fed.node_mut(beta)
        .unwrap()
        .deploy(mote_descriptor("beta-mote", 100, 7))
        .unwrap();
    fed.run_for(Duration::from_secs(2), Duration::from_millis(100));

    let request = fed
        .node_mut(alpha)
        .unwrap()
        .request_peer_metrics(beta)
        .unwrap();
    let mut scraped = None;
    for _ in 0..300 {
        fed.step(Duration::from_millis(100));
        if let Some(snapshot) = fed.node_mut(alpha).unwrap().take_peer_metrics(request) {
            scraped = Some(snapshot);
            break;
        }
    }
    let snapshot = scraped.expect("peer snapshot never arrived over the lossy link");
    // The scraped snapshot is the peer's full export surface, not a digest.
    assert!(snapshot.distinct_names() >= 30);
    let steps = snapshot
        .get("gsn_steps_total")
        .and_then(|s| s.as_counter())
        .unwrap_or(0);
    assert!(steps > 0, "peer reported no steps");
    assert!(
        snapshot
            .get("gsn_storage_rows_inserted_total")
            .and_then(|s| s.as_counter())
            .unwrap_or(0)
            > 0
    );
    // The cached copy remains queryable by node id after the take.
    assert!(fed.node(alpha).unwrap().peer_metrics(beta).is_some());
}

// ---------------------------------------------------------------------------------------
// Distributed trace propagation
// ---------------------------------------------------------------------------------------

/// An N-node mesh where node `i` traces iff `tracing[i]`, every node hosting a
/// shard of the same logical `mesh_temp` table.
fn tracing_mesh(tracing: &[bool]) -> (Mesh, Vec<NodeId>) {
    let mut mesh = Mesh::new();
    let ids: Vec<_> = tracing
        .iter()
        .enumerate()
        .map(|(i, &traced)| {
            let config = ContainerConfig::named(NodeId::new(i as u64 + 1), &format!("trace-{i}"))
                .with_tracing(traced);
            mesh.add_node_with_config(config).unwrap()
        })
        .collect();
    for (i, id) in ids.iter().enumerate() {
        mesh.node_mut(*id)
            .unwrap()
            .deploy(mote_descriptor("mesh-temp", 100, i as u32))
            .unwrap();
    }
    (mesh, ids)
}

/// Steps the mesh until no node has a trace collection in flight.
fn drain_trace_collects(mesh: &mut Mesh, ids: &[NodeId]) {
    for _ in 0..600 {
        if ids
            .iter()
            .all(|id| mesh.node(*id).unwrap().pending_trace_collects() == 0)
        {
            return;
        }
        mesh.step(Duration::from_millis(50));
    }
    panic!("trace collections never drained");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Federated queries from random coordinators over links dropping 25% of
    /// frames: every coordinator must end up with exactly one assembled tree per
    /// trace id, each connected (one root, every parent link resolvable) with
    /// mesh-unique span ids — losses are absorbed by re-sends, never by forked
    /// or duplicated trees.
    #[test]
    fn lossy_trace_propagation_yields_one_connected_tree_per_trace(
        coordinators in prop::collection::vec(0usize..4, 1..4)
    ) {
        let (mut mesh, ids) = tracing_mesh(&[true; 4]);
        mesh.run_for(Duration::from_secs(2), Duration::from_millis(100));
        prop_assert!(mesh.replicas_converged(), "gossip did not converge");
        // Loss starts only after the (lossless) join handshakes and warm-up.
        mesh.set_all_links(LinkSpec::wireless(5, 0.25));

        let mut expected = [0usize; 4];
        for &c in &coordinators {
            mesh.federated_query(
                ids[c],
                "select count(*) as n from mesh_temp",
                Duration::from_millis(50),
                600,
            )
            .unwrap();
            expected[c] += 1;
        }
        drain_trace_collects(&mut mesh, &ids);

        for (i, id) in ids.iter().enumerate() {
            let traces = mesh.node(*id).unwrap().assembled_traces();
            prop_assert_eq!(
                traces.len(), expected[i],
                "node {} assembled {} traces, expected {}", i, traces.len(), expected[i]
            );
            let mut trace_ids = std::collections::HashSet::new();
            for trace in &traces {
                prop_assert!(
                    trace_ids.insert(trace.trace_id),
                    "two trees assembled for trace {:032x}", trace.trace_id
                );
                prop_assert!(!trace.incomplete, "broken parent links in {:032x}", trace.trace_id);
                let mut span_ids = std::collections::HashSet::new();
                for span in &trace.spans {
                    prop_assert_eq!(span.trace_id, trace.trace_id);
                    prop_assert!(
                        span_ids.insert(span.id),
                        "span id {} appears twice (namespacing broken)", span.id
                    );
                }
                prop_assert_eq!(
                    trace.spans.iter().filter(|s| s.id == trace.root).count(),
                    1,
                    "trace {:032x} does not have exactly one root", trace.trace_id
                );
                for span in &trace.spans {
                    prop_assert!(
                        span.id == trace.root || span_ids.contains(&span.parent),
                        "span {} is disconnected from the tree", span.id
                    );
                }
            }
        }
    }
}

/// Mixed meshes keep working: an untraced container speaks the pre-extension
/// wire format (its frames carry no trace/health extensions at all), serves
/// traced coordinators without contributing spans, and — as a coordinator —
/// runs federated queries that never start a trace.
#[test]
fn untraced_containers_interoperate_with_traced_ones() {
    let (mut mesh, ids) = tracing_mesh(&[true, true, true, false]);
    mesh.run_for(Duration::from_secs(2), Duration::from_millis(100));
    assert!(mesh.replicas_converged(), "gossip did not converge");

    // Traced coordinator, one untraced participant: the gather completes and the
    // tree is complete — it simply carries spans only from the traced members.
    mesh.federated_query(
        ids[0],
        "select count(*) as n from mesh_temp",
        Duration::from_millis(100),
        100,
    )
    .unwrap();
    drain_trace_collects(&mut mesh, &ids);
    let traces = mesh.node(ids[0]).unwrap().assembled_traces();
    assert_eq!(traces.len(), 1);
    let traced_members: Vec<u64> = ids[..3].iter().map(|n| n.as_u64()).collect();
    assert_eq!(traces[0].nodes, traced_members);
    assert!(!traces[0].incomplete);

    // Untraced coordinator: the query itself works (frames byte-identical to the
    // legacy format), and no trace is started or collected anywhere.
    let rel = mesh
        .federated_query(
            ids[3],
            "select count(*) as n from mesh_temp",
            Duration::from_millis(100),
            100,
        )
        .unwrap();
    assert!(rel.rows()[0][0].as_integer().unwrap() >= 0);
    assert_eq!(mesh.node(ids[3]).unwrap().pending_trace_collects(), 0);
    assert!(mesh.node(ids[3]).unwrap().assembled_traces().is_empty());
}

// ---------------------------------------------------------------------------------------
// Overhead guard (bench mode)
// ---------------------------------------------------------------------------------------

/// Extracts `elements_per_sec` (column 5) of the `workers == 1` row from the
/// checked-in `BENCH_parallel.json` baseline.
fn baseline_elements_per_sec(json: &str) -> Option<f64> {
    let rows = &json[json.find("\"rows\"")?..];
    let row = &rows[rows.find('[')? + 1..];
    let row = &row[row.find('[')? + 1..row.find(']')?];
    let cells: Vec<f64> = row
        .split(',')
        .filter_map(|c| c.trim().parse::<f64>().ok())
        .collect();
    if cells.first().copied() == Some(1.0) {
        cells.get(5).copied()
    } else {
        None
    }
}

/// Bench-mode guard for the tentpole's hot-path promise: with telemetry always
/// on — and since the tracing PR, with span recording *enabled* — the
/// `workers = 1` step loop must stay within 3% of the PR-5 baseline in
/// `BENCH_parallel.json` (identical 64-sensor workload).  Run explicitly:
///
/// ```text
/// cargo test --release --test telemetry -- --ignored
/// ```
#[test]
#[ignore = "bench mode: compares wall-clock throughput against BENCH_parallel.json"]
fn step_loop_overhead_within_3_percent_of_baseline() {
    let baseline_json =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_parallel.json"))
            .expect("BENCH_parallel.json baseline present");
    let baseline = baseline_elements_per_sec(&baseline_json)
        .expect("baseline has a workers=1 row with elements_per_sec");

    // The BENCH_parallel full cell: 64 sensors, 8 one-second steps, 50 ms motes.
    let clock = SimulatedClock::new();
    let mut node = GsnContainer::new(
        ContainerConfig::default()
            .with_workers(1)
            .with_tracing(true),
        Arc::new(clock.clone()),
    );
    for i in 0..64 {
        node.deploy(mote_descriptor(&format!("mote-{i}"), 50, i as u32))
            .unwrap();
    }
    // Warm-up: populate caches/pages so the timed section measures steady state,
    // exactly as the bench harness's sweep loop does.
    for _ in 0..2 {
        clock.advance(Duration::from_secs(1));
        node.step();
    }
    let mut elements = 0u64;
    let started = std::time::Instant::now();
    for _ in 0..8 {
        clock.advance(Duration::from_secs(1));
        let report = node.step();
        elements += report.local_arrivals + report.remote_arrivals;
    }
    let achieved = elements as f64 / started.elapsed().as_secs_f64().max(1e-9);
    assert!(
        achieved >= baseline * 0.97,
        "instrumented step loop too slow: {achieved:.0} el/s vs baseline {baseline:.0} el/s \
         ({:.1}% of baseline, floor is 97%)",
        achieved / baseline * 100.0
    );
}
